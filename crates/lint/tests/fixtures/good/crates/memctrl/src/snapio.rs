//! Fixture: snapio writer/reader cover every field (clean for
//! `snapshot-coverage`).

/// A request record with two persisted fields.
pub struct ReqRecord {
    /// Request id.
    pub id: u64,
    /// Target address.
    pub addr: u64,
}

/// Serializes a [`ReqRecord`]; touches every field.
pub fn write_req_record(w: &mut Vec<u64>, p: &ReqRecord) {
    w.push(p.id);
    w.push(p.addr);
}

/// Deserializes a [`ReqRecord`]; covers both fields.
pub fn read_req_record(r: &mut std::slice::Iter<'_, u64>) -> Result<ReqRecord, ()> {
    let id = *r.next().ok_or(())?;
    let addr = *r.next().ok_or(())?;
    Ok(ReqRecord { id, addr })
}
