//! Fixture: integer-only stats merge (clean for `float-merge`).

/// Per-shard counters merged across worker threads.
pub struct ShardStats {
    /// Total latency in cycles.
    pub total: u64,
    /// Number of samples.
    pub n: u64,
}

impl ShardStats {
    /// Merges another shard with integer arithmetic only — associative
    /// and order-independent.
    pub fn merge(&mut self, other: &ShardStats) {
        self.total += other.total;
        self.n += other.n;
    }

    /// Floats are fine outside merge paths (presentation only).
    pub fn mean(&self) -> f64 {
        self.total as f64 / self.n.max(1) as f64
    }
}
