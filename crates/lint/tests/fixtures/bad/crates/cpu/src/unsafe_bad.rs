//! Fixture: an `unsafe` block (rule `no-unsafe`). There is no escape hatch.

/// Reads the first element without a bounds check.
pub fn first_unchecked(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}
