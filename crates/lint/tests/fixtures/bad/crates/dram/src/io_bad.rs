//! Fixture: ambient process I/O from model code (rule `io-access`).

/// Reads configuration from the environment — hidden input to the model.
pub fn rows_from_env() -> u64 {
    std::env::var("CLOUDMC_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(65536)
}
