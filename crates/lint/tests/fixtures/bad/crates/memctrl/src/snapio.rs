//! Fixture: snapio writer misses a field (rule `snapshot-coverage`).

/// A request record with two persisted fields.
pub struct ReqRecord {
    /// Request id.
    pub id: u64,
    /// Target address — forgotten by `write_req_record` below.
    pub addr: u64,
}

/// Serializes a [`ReqRecord`] — but only touches `id`, never `addr`.
pub fn write_req_record(w: &mut Vec<u64>, p: &ReqRecord) {
    w.push(p.id);
}

/// Deserializes a [`ReqRecord`]; covers both fields.
pub fn read_req_record(r: &mut std::slice::Iter<'_, u64>) -> Result<ReqRecord, ()> {
    let id = *r.next().ok_or(())?;
    let addr = *r.next().ok_or(())?;
    Ok(ReqRecord { id, addr })
}
