//! Fixture: floating point inside a stats-merge path (rule `float-merge`).

/// Per-shard counters merged across worker threads.
pub struct ShardStats {
    /// Total latency in cycles.
    pub total: u64,
    /// Number of samples.
    pub n: u64,
}

impl ShardStats {
    /// Merges another shard — the f64 average makes the result
    /// sensitive to merge order.
    pub fn merge(&mut self, other: &ShardStats) {
        let avg = other.total as f64 / other.n.max(1) as f64;
        self.total += avg as u64 * other.n;
        self.n += other.n;
    }
}
