//! Fixture: reads the host wall clock from sim code (rule `wall-clock`).

use std::time::Instant;

/// Returns a host timestamp — forbidden in simulator state paths.
pub fn stamp() -> Instant {
    Instant::now()
}
