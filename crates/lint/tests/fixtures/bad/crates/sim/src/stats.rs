//! Fixture: stats JSON keys drifted from the checked-in schema
//! (rule `stats-schema`).
//!
//! The source emits `reads` and `writes`; the schema file at the fixture
//! root lists `reads` and `row_hits` — so `row_hits` was removed from the
//! source (breaking change) and `writes` is new but unlisted.

/// Simulator counters serialized to JSON.
pub struct SimStats {
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
}

impl SimStats {
    /// Renders the counters as a stable-key-order JSON object.
    pub fn to_json(&self) -> String {
        format!("{{\"reads\":{},\"writes\":{}}}", self.reads, self.writes)
    }
}
