//! Fixture: iterates a HashMap directly in sim code (rule `hash-iter`).

use std::collections::HashMap;

/// Holds per-tenant counters keyed by tenant id.
pub struct TenantCounters {
    counts: HashMap<u64, u64>,
}

impl TenantCounters {
    /// Dumps the counters in hash order — nondeterministic across runs.
    pub fn dump(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }

    /// Iterates the map with a `for` loop — also nondeterministic.
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for (_k, v) in &self.counts {
            sum += v;
        }
        sum
    }
}
