//! Fixture: a suppression comment with no justification is itself flagged.

/// The allow below has no reason text, so simlint reports the suppression.
pub fn checked(xs: &[u64]) -> u64 {
    // simlint: allow(panic)
    xs.first().copied().unwrap()
}
