//! Fixture: panicking call in library code (rule `panic`).

/// Unwraps an option in non-test library code.
pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
