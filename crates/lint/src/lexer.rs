//! A minimal Rust lexer: just enough structure for token-level lint rules.
//!
//! The build environment is offline, so `syn`/`proc-macro2` are unavailable;
//! instead every rule works over this scanner's output. It understands the
//! pieces that matter for *not lying* at the token level:
//!
//! * line (`//`) and nested block (`/* */`) comments are skipped, but
//!   `// simlint: allow(rule) reason` suppression comments are collected
//!   per line;
//! * string literals (plain, raw with any `#` depth, byte, C), char literals
//!   and lifetimes are consumed as single tokens so their *contents* can
//!   never match a rule pattern;
//! * every token records its 1-based source line for diagnostics;
//! * `#[cfg(test)]` regions are marked so rules can ignore test-only code.

use std::collections::BTreeMap;

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Any punctuation or operator character (one char per token).
    Punct,
    /// Numeric literal.
    Number,
    /// String/char/lifetime literal. `text` carries the raw source text
    /// (escapes unprocessed) so the schema rule can read key literals, but
    /// the kind keeps identifier-matching rules from ever matching inside.
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token (one char for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One `// simlint: allow(rule) reason` suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id inside the parentheses.
    pub rule: String,
    /// Justification text after the closing parenthesis (may be empty —
    /// the engine rejects empty reasons as violations of the annotation
    /// contract).
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// A fully lexed source file.
#[derive(Debug)]
pub struct LexedFile {
    /// Tokens in source order (comments and whitespace removed).
    pub tokens: Vec<Tok>,
    /// Suppression comments keyed by the line they appear on.
    pub suppressions: BTreeMap<u32, Vec<Suppression>>,
}

impl LexedFile {
    /// Suppressions that cover `line`: one on the same line or on the
    /// directly preceding line.
    pub fn suppressions_covering(&self, line: u32) -> impl Iterator<Item = &Suppression> {
        let prev = line.saturating_sub(1);
        self.suppressions
            .get(&line)
            .into_iter()
            .chain(self.suppressions.get(&prev))
            .flatten()
    }
}

/// Marker comment prefix recognized as a lint suppression.
const ALLOW_PREFIX: &str = "simlint: allow(";

/// Lexes one file's source text.
#[must_use]
pub fn lex(source: &str) -> LexedFile {
    let mut lx = Lexer {
        chars: source.char_indices().peekable(),
        src: source,
        line: 1,
        tokens: Vec::new(),
        suppressions: BTreeMap::new(),
    };
    lx.run();
    mark_test_regions(&mut lx.tokens);
    LexedFile {
        tokens: lx.tokens,
        suppressions: lx.suppressions,
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
    line: u32,
    tokens: Vec<Tok>,
    suppressions: BTreeMap<u32, Vec<Suppression>>,
}

impl Lexer<'_> {
    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, '\n')) = next {
            self.line += 1;
        }
        next
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn peek2(&mut self) -> Option<char> {
        let mut clone = self.chars.clone();
        clone.next();
        clone.next().map(|(_, c)| c)
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32) {
        self.tokens.push(Tok {
            kind,
            text: text.to_owned(),
            line,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some((i, c)) = self.bump() {
            let line = if c == '\n' { self.line - 1 } else { self.line };
            match c {
                c if c.is_whitespace() => {}
                '/' if self.peek() == Some('/') => self.line_comment(i),
                '/' if self.peek() == Some('*') => self.block_comment(),
                '"' => self.string_literal(i, line),
                'r' | 'b' | 'c'
                    if self.peek() == Some('"')
                        || (self.peek() == Some('#') && self.raw_follows())
                        || (c == 'b' && self.peek() == Some('\'')) =>
                {
                    // r"...", r#"..."#, b"...", br#"..."# etc. — consume the
                    // prefix then the raw/plain string or byte-char body.
                    self.prefixed_literal(i, c, line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c == '_' || c.is_alphabetic() => self.ident(i, line),
                c if c.is_ascii_digit() => self.number(i, line),
                c => {
                    let mut buf = [0u8; 4];
                    self.push(TokKind::Punct, c.encode_utf8(&mut buf), line);
                }
            }
        }
    }

    /// Whether the `#...` run after an `r`/`b` prefix introduces a raw string.
    fn raw_follows(&mut self) -> bool {
        let clone = self.chars.clone();
        for (_, c) in clone {
            match c {
                '#' => continue,
                '"' => return true,
                _ => return false,
            }
        }
        false
    }

    fn line_comment(&mut self, start: usize) {
        let line = self.line;
        let mut end = self.src.len();
        while let Some((i, c)) = self.bump() {
            if c == '\n' {
                end = i;
                break;
            }
        }
        let text = &self.src[start..end];
        if let Some(rest) = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start()
            .strip_prefix(ALLOW_PREFIX)
        {
            if let Some(close) = rest.find(')') {
                let rule = rest[..close].trim().to_owned();
                let reason = rest[close + 1..].trim().to_owned();
                self.suppressions
                    .entry(line)
                    .or_default()
                    .push(Suppression { rule, reason, line });
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // consume '*'
        let mut depth = 1u32;
        while depth > 0 {
            match self.bump() {
                Some((_, '/')) if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some((_, '*')) if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    fn string_literal(&mut self, start: usize, line: u32) {
        let mut end = self.src.len();
        while let Some((i, c)) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => {
                    end = i + 1;
                    break;
                }
                _ => {}
            }
        }
        self.push(TokKind::Literal, &self.src[start..end], line);
    }

    fn raw_string(&mut self, start: usize, line: u32) {
        // At entry the upcoming chars are `#*"` (hashes then the quote).
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let mut end = self.src.len();
        'outer: while let Some((i, c)) = self.bump() {
            if c == '"' {
                let mut clone = self.chars.clone();
                for _ in 0..hashes {
                    if clone.next().map(|(_, c)| c) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                end = i + 1 + hashes;
                break;
            }
        }
        self.push(TokKind::Literal, &self.src[start..end], line);
    }

    fn prefixed_literal(&mut self, start: usize, prefix: char, line: u32) {
        match self.peek() {
            // `r"..."`: no escape processing inside.
            Some('"') if prefix == 'r' => self.raw_string(start, line),
            Some('"') => {
                self.bump();
                self.string_literal(start, line);
            }
            Some('#') => self.raw_string(start, line),
            Some('\'') => {
                // b'x' byte literal.
                self.bump();
                while let Some((_, c)) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokKind::Literal, "b'.'", line);
            }
            _ => {
                // Plain identifier starting with r/b/c after all.
                self.push(TokKind::Ident, &prefix.to_string(), line);
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // Distinguish `'a` (lifetime) from `'a'` / `'\n'` (char literal).
        match (self.peek(), self.peek2()) {
            (Some('\\'), _) => {
                // Escaped char literal.
                self.bump();
                self.bump();
                while let Some((_, c)) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, "'.'", line);
            }
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.push(TokKind::Literal, "'.'", line);
            }
            _ => {
                // Lifetime: consume the identifier part.
                while let Some(c) = self.peek() {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Literal, "'_", line);
            }
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        let mut end = start + self.src[start..].chars().next().map_or(1, char::len_utf8);
        while let Some(&(i, c)) = self.chars.peek() {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        let text = self.src[start..end].to_owned();
        self.tokens.push(Tok {
            kind: TokKind::Ident,
            text,
            line,
            in_test: false,
        });
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut end = start + 1;
        while let Some(&(i, c)) = self.chars.peek() {
            // Good enough for rule purposes: digits, underscores, type
            // suffixes, hex letters, exponent signs and the decimal point.
            if c == '_' || c == '.' || c.is_alphanumeric() {
                // A `..` range after a number is punctuation, not part of it.
                if c == '.' && self.peek2() == Some('.') {
                    break;
                }
                self.bump();
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, &self.src[start..end], line);
    }
}

/// Marks every token inside a `#[cfg(test)]` item as test code.
///
/// On seeing the attribute sequence `# [ cfg ( test ) ]` (or
/// `#[cfg(any(test, ...))]` etc. — any attribute whose argument list contains
/// the `test` identifier), the next braced block is treated as the item body
/// and all tokens through its matching close brace are marked.
fn mark_test_regions(tokens: &mut [Tok]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        {
            // Scan the attribute's argument tokens up to the closing `]`.
            let mut j = i + 3;
            let mut is_test_attr = false;
            let mut negated = false;
            let mut bracket_depth = 1u32;
            while j < tokens.len() && bracket_depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    bracket_depth += 1;
                } else if t.is_punct(']') {
                    bracket_depth -= 1;
                } else if t.is_ident("test") {
                    is_test_attr = true;
                } else if t.is_ident("not") {
                    // `#[cfg(not(test))]` guards *live* code — never treat
                    // anything under a negation as test-only.
                    negated = true;
                }
                j += 1;
            }
            let is_test_attr = is_test_attr && !negated;
            if is_test_attr {
                // Mark everything from the attribute to the end of the next
                // braced block (the annotated item's body).
                let mut depth = 0u32;
                let mut k = j;
                let mut opened = false;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                        opened = true;
                    } else if tokens[k].is_punct('}') {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break;
                        }
                    } else if !opened && tokens[k].is_punct(';') {
                        // `#[cfg(test)] use ...;` — item without a body.
                        break;
                    }
                    k += 1;
                }
                let last = k.min(tokens.len().saturating_sub(1));
                for t in &mut tokens[i..=last] {
                    t.in_test = true;
                }
                i = k + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_opaque() {
        let lexed = lex(r##"
            // HashMap::iter in a comment
            /* unsafe in /* nested */ block */
            let s = "panic! inside a string";
            let r = r#"raw with "quotes" and unwrap()"#;
            let c = 'x';
        "##);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("let")));
        // Literal contents survive verbatim for the schema rule.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text.contains("panic! inside")));
    }

    #[test]
    fn suppressions_are_collected_with_reasons() {
        let lexed = lex("let x = 1; // simlint: allow(panic) startup invariant\n");
        let sup = &lexed.suppressions[&1][0];
        assert_eq!(sup.rule, "panic");
        assert_eq!(sup.reason, "startup invariant");
        assert!(lexed.suppressions_covering(2).next().is_some());
        assert!(lexed.suppressions_covering(1).next().is_some());
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "
            fn live() { work(); }
            #[cfg(test)]
            mod tests {
                fn inner() { probe(); }
            }
            fn also_live() { more(); }
        ";
        let lexed = lex(src);
        let probe = lexed.tokens.iter().find(|t| t.is_ident("probe")).unwrap();
        assert!(probe.in_test);
        let work = lexed.tokens.iter().find(|t| t.is_ident("work")).unwrap();
        assert!(!work.in_test);
        let more = lexed.tokens.iter().find(|t| t.is_ident("more")).unwrap();
        assert!(!more.in_test, "marking must end at the mod's close brace");
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn raw_identifier_prefix_chars_stay_identifiers() {
        let lexed = lex("let radius = r * b + c;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("radius")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("r")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("b")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("c")));
    }
}
