//! `simlint` — the cloudmc workspace static analyzer.
//!
//! ```text
//! simlint [--root PATH] [--list] [--json] [--deny RULE|all] [--allow RULE|all]
//!         [--update-schema]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use cloudmc_lint::{analyze, report_to_json, update_schema, Config, RULES};

const HELP: &str = "simlint - cloudmc workspace static analyzer

USAGE:
    simlint [OPTIONS]

OPTIONS:
    --root PATH        workspace root (default: nearest ancestor with a
                       [workspace] Cargo.toml)
    --list             list every rule with its description and exit
    --json             emit the report as JSON on stdout
    --deny RULE|all    enable a rule (applied in order; default: all denied)
    --allow RULE|all   disable a rule (applied in order)
    --update-schema    regenerate stats_schema.txt from crates/sim/src/stats.rs
    -h, --help         show this help

EXIT CODES:
    0  no violations
    1  violations found
    2  usage or I/O error
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut json = false;
    let mut do_update = false;
    // (deny?, rule) in command-line order; default is deny-all.
    let mut toggles: Vec<(bool, String)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--list" => list = true,
            "--json" => json = true,
            "--update-schema" => do_update = true,
            "--deny" => match args.next() {
                Some(r) => toggles.push((true, r)),
                None => return usage_error("--deny needs a rule name or `all`"),
            },
            "--allow" => match args.next() {
                Some(r) => toggles.push((false, r)),
                None => return usage_error("--allow needs a rule name or `all`"),
            },
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if list {
        for (id, desc) in RULES {
            println!("{id:18} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        cloudmc_lint::find_workspace_root(&cwd)
    }) {
        Some(r) => r,
        None => return usage_error("no workspace root found; pass --root"),
    };

    if do_update {
        return match update_schema(&root) {
            Ok(n) => {
                println!("stats_schema.txt updated: {n} keys");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simlint: {e}");
                ExitCode::from(2)
            }
        };
    }

    // Resolve rule toggles: default deny-all, then apply in order.
    let all: BTreeSet<String> = RULES.iter().map(|(id, _)| (*id).to_owned()).collect();
    let mut enabled = all.clone();
    for (deny, rule) in &toggles {
        if rule == "all" {
            enabled = if *deny { all.clone() } else { BTreeSet::new() };
        } else if all.contains(rule.as_str()) {
            if *deny {
                enabled.insert(rule.clone());
            } else {
                enabled.remove(rule.as_str());
            }
        } else {
            return usage_error(&format!("unknown rule `{rule}` (see `simlint --list`)"));
        }
    }

    let config = Config { root, enabled };
    let report = match analyze(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report_to_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "simlint: {} file(s) scanned, {} violation(s), {} suppressed",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed
        );
    }

    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}\n\n{HELP}");
    ExitCode::from(2)
}
