//! `cloudmc-lint`: a dependency-free, workspace-aware static analyzer that
//! turns the simulator's cross-cutting invariants — determinism, snapshot
//! coverage, additive-only stats schema, no-panic library paths — into
//! machine-checked lint rules.
//!
//! The build environment is offline, so there is no `syn`: analysis is
//! token-level (see [`lexer`]) with shallow structural views (see [`items`]).
//! Rules are named and individually suppressible with
//! `// simlint: allow(<rule>) <reason>` on the offending line or the line
//! above it; an empty reason is itself a violation. The `no-unsafe` rule has
//! no escape hatch.

#![forbid(unsafe_code)]

pub mod items;
pub mod lexer;
pub mod rules;
pub mod schema;
pub mod snapcov;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::LexedFile;

/// Registry of every rule: `(id, one-line description)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-iter",
        "no HashMap/HashSet iteration in sim/memctrl/dram/cpu non-test code \
         outside the cloudmc_snap::det sorted-iteration helpers",
    ),
    (
        "wall-clock",
        "no Instant::now/SystemTime outside telemetry/bench; profile-gated \
         sites need an explicit annotation",
    ),
    (
        "panic",
        "no unwrap()/expect()/panic!/unimplemented!/todo! in library-crate \
         non-test code without an annotated invariant",
    ),
    (
        "snapshot-coverage",
        "every field of a snapshot-serialized struct must be touched by both \
         its save and load paths",
    ),
    (
        "stats-schema",
        "stats JSON keys in crates/sim/src/stats.rs must match the checked-in \
         stats_schema.txt; keys are additive-only",
    ),
    (
        "no-unsafe",
        "no `unsafe` anywhere in the workspace (no escape hatch)",
    ),
    (
        "float-merge",
        "no f32/f64 inside merge* functions: thread-merged stats accumulate \
         in integers for order-independent results",
    ),
    (
        "io-access",
        "no std::fs/std::env from sim/dram/memctrl/cpu; I/O stays in bench \
         and the telemetry sinks",
    ),
];

/// A rule hit before suppression processing.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Candidate {
    /// Convenience constructor.
    #[must_use]
    pub fn new(rule: &'static str, line: u32, message: String) -> Self {
        Candidate {
            rule,
            line,
            message,
        }
    }
}

/// One confirmed (unsuppressed) violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Analyzer output.
#[derive(Debug)]
pub struct Report {
    /// Violations, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of candidates silenced by a justified annotation.
    pub suppressed: usize,
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Rules to enforce (ids from [`RULES`]).
    pub enabled: BTreeSet<String>,
}

impl Config {
    /// All rules enabled against `root`.
    #[must_use]
    pub fn all_rules(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            enabled: RULES.iter().map(|(id, _)| (*id).to_owned()).collect(),
        }
    }

    fn on(&self, rule: &str) -> bool {
        self.enabled.contains(rule)
    }
}

/// One scanned source file.
pub struct SourceFile {
    /// Owning crate (`cloudmc` for the root crate, directory name otherwise).
    pub crate_name: String,
    /// Bare file name (`system.rs`).
    pub file_name: String,
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Lexed contents.
    pub lexed: LexedFile,
}

/// Walks and lexes every workspace source file under `root`: the root
/// crate's `src/` plus each `crates/<name>/src/` except `crates/lint`
/// itself. `third_party/` and `target/` are never entered.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        {
            let entry = entry.map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
            names.push(entry.path());
        }
        names.sort();
        for dir in names {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "lint" || !dir.is_dir() {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = match rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        {
            Some(name) => name.to_owned(),
            None => "cloudmc".to_owned(),
        };
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        out.push(SourceFile {
            crate_name,
            file_name,
            rel_path: rel,
            lexed: lexer::lex(&text),
        });
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "third_party" && name != "target" {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A candidate awaiting suppression processing: the index of the file it was
/// found in, the hit itself, and any extra `(file idx, line)` points where a
/// suppression comment may also cover it (cross-file rules).
type PendingCandidate = (usize, Candidate, Vec<(usize, u32)>);

/// Runs every enabled rule and applies suppressions.
pub fn analyze(config: &Config) -> Result<Report, String> {
    let files = load_workspace(&config.root)?;
    let mut cands: Vec<PendingCandidate> = Vec::new();

    for (fi, sf) in files.iter().enumerate() {
        let mut local = Vec::new();
        if config.on("hash-iter") {
            rules::hash_iter(&sf.crate_name, &sf.file_name, &sf.lexed, &mut local);
        }
        if config.on("wall-clock") {
            rules::wall_clock(&sf.crate_name, &sf.lexed, &mut local);
        }
        if config.on("panic") {
            rules::panic_paths(&sf.crate_name, &sf.lexed, &mut local);
        }
        if config.on("no-unsafe") {
            rules::no_unsafe(&sf.lexed, &mut local);
        }
        if config.on("float-merge") {
            rules::float_merge(&sf.crate_name, &sf.lexed, &mut local);
        }
        if config.on("io-access") {
            rules::io_access(&sf.crate_name, &sf.lexed, &mut local);
        }
        cands.extend(local.into_iter().map(|c| (fi, c, Vec::new())));
    }

    if config.on("snapshot-coverage") {
        for cc in snapcov::check(&files) {
            cands.push((cc.file, cc.cand, cc.also_suppress));
        }
    }

    if config.on("stats-schema") {
        if let Some(fi) = files
            .iter()
            .position(|f| f.rel_path == schema::STATS_SOURCE)
        {
            let keys = schema::extract_keys(&files[fi].lexed);
            let schema_text = std::fs::read_to_string(config.root.join(schema::SCHEMA_FILE)).ok();
            for c in schema::check(&keys, schema_text.as_deref()) {
                cands.push((fi, c, Vec::new()));
            }
        }
    }

    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for (fi, cand, also) in cands {
        // `no-unsafe` has no annotation escape.
        let suppression = if cand.rule == "no-unsafe" {
            None
        } else {
            let mut points = vec![(fi, cand.line)];
            points.extend(also);
            points.into_iter().find_map(|(pfi, line)| {
                files[pfi]
                    .lexed
                    .suppressions_covering(line)
                    .find(|s| s.rule == cand.rule)
                    .map(|s| (pfi, s.line, s.reason.clone()))
            })
        };
        match suppression {
            Some((pfi, line, reason)) if reason.is_empty() => diagnostics.push(Diagnostic {
                rule: cand.rule.to_owned(),
                file: files[pfi].rel_path.clone(),
                line,
                message: format!(
                    "suppression for `{}` is missing its justification — write \
                     `// simlint: allow({}) <reason>`",
                    cand.rule, cand.rule
                ),
            }),
            Some(_) => suppressed += 1,
            None => diagnostics.push(Diagnostic {
                rule: cand.rule.to_owned(),
                file: files[fi].rel_path.clone(),
                line: cand.line,
                message: cand.message,
            }),
        }
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    diagnostics.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });

    Ok(Report {
        diagnostics,
        files_scanned: files.len(),
        suppressed,
    })
}

/// Regenerates `stats_schema.txt` from the current stats source. Returns the
/// number of keys written.
pub fn update_schema(root: &Path) -> Result<usize, String> {
    let src_path = root.join(schema::STATS_SOURCE);
    let text = std::fs::read_to_string(&src_path)
        .map_err(|e| format!("read {}: {e}", src_path.display()))?;
    let keys = schema::extract_keys(&lexer::lex(&text));
    let out_path = root.join(schema::SCHEMA_FILE);
    std::fs::write(&out_path, schema::render_schema(&keys))
        .map_err(|e| format!("write {}: {e}", out_path.display()))?;
    Ok(keys.len())
}

/// Nearest ancestor of `start` (inclusive) whose `Cargo.toml` declares a
/// `[workspace]` — how `simlint` and `repro lint` locate the tree to scan.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Renders a report as a JSON object (hand-written: the workspace is
/// dependency-free).
#[must_use]
pub fn report_to_json(report: &Report) -> String {
    let mut s = String::from("{\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(&d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
    }
    s.push_str(&format!(
        "],\"files_scanned\":{},\"suppressed\":{},\"violations\":{}}}",
        report.files_scanned,
        report.suppressed,
        report.diagnostics.len()
    ));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
