//! Structural views over the token stream: function spans, struct
//! definitions, and inherent-impl method bodies.
//!
//! These are deliberately shallow — no expression parsing, no type
//! resolution — but they give the rules exactly the shape they need:
//! "which tokens form the body of `fn merge`", "which fields does
//! `struct McStats` declare", "where is `save_state` inside `impl McStats`".

use crate::lexer::{Tok, TokKind};

/// One `fn` item found in a token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the parameter list, exclusive of the parentheses.
    pub params: std::ops::Range<usize>,
    /// Token range between `)` and the body `{` (the return type, if any).
    pub ret: std::ops::Range<usize>,
    /// Token range of the body, exclusive of the outer braces.
    pub body: std::ops::Range<usize>,
}

/// One `struct` definition with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Declared field names with the line each is declared on.
    pub fields: Vec<(String, u32)>,
    /// Whether the definition sits inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// Index of the matching close delimiter for the open delimiter at `open`.
/// Returns `tokens.len()` when unbalanced (truncated input).
#[must_use]
pub fn matching_close(tokens: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Finds every `fn` item (free functions and methods alike).
#[must_use]
pub fn functions(tokens: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // Parameter list: first `(` after the name (skipping generics).
            let mut j = i + 2;
            if j < tokens.len() && tokens[j].is_punct('<') {
                j = matching_close(tokens, j, '<', '>') + 1;
            }
            if j >= tokens.len() || !tokens[j].is_punct('(') {
                i += 1;
                continue;
            }
            let params_close = matching_close(tokens, j, '(', ')');
            // Body: first `{` after the params (return types and where
            // clauses do not contain top-level braces in this codebase).
            let mut k = params_close + 1;
            while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                k += 1;
            }
            if k >= tokens.len() || tokens[k].is_punct(';') {
                // Trait method signature without a body.
                i = k.min(tokens.len());
                continue;
            }
            let body_close = matching_close(tokens, k, '{', '}');
            out.push(FnSpan {
                name,
                line,
                params: j + 1..params_close,
                ret: params_close + 1..k,
                body: k + 1..body_close,
            });
            // Continue *inside* the body too: nested fns are rare but real.
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Finds every named-field `struct` definition.
#[must_use]
pub fn structs(tokens: &[Tok]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("struct")
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            let in_test = tokens[i].in_test;
            let mut j = i + 2;
            if j < tokens.len() && tokens[j].is_punct('<') {
                j = matching_close(tokens, j, '<', '>') + 1;
            }
            // Tuple structs (`(`) and unit structs (`;`) have no named
            // fields to check.
            if j < tokens.len() && tokens[j].is_punct('{') {
                let close = matching_close(tokens, j, '{', '}');
                let fields = field_names(&tokens[j + 1..close]);
                out.push(StructDef {
                    name,
                    line,
                    fields,
                    in_test,
                });
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Field names declared at the top level of a struct body: identifiers
/// directly followed by a single `:` (not `::`), outside nested delimiters.
fn field_names(body: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
            depth -= 1;
        } else if depth == 0
            && t.kind == TokKind::Ident
            && body.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !body.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !(i > 0 && body[i - 1].is_punct(':'))
        {
            out.push((t.text.clone(), t.line));
            // Skip ahead to the comma that ends this field so type tokens
            // (which may contain `ident:` inside fn pointers etc.) are not
            // mistaken for further fields.
            let mut d = 0i32;
            i += 2;
            while i < body.len() {
                let u = &body[i];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('<') {
                    d += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('>') {
                    d -= 1;
                } else if u.is_punct(',') && d <= 0 {
                    break;
                }
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    out
}

/// Inherent (`impl Name { ... }`, no trait) impl blocks: returns
/// `(struct_name, body_range)` for each.
#[must_use]
pub fn inherent_impls(tokens: &[Tok]) -> Vec<(String, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_punct('<') {
                j = matching_close(tokens, j, '<', '>') + 1;
            }
            if j < tokens.len() && tokens[j].kind == TokKind::Ident {
                let name = tokens[j].text.clone();
                let mut k = j + 1;
                if k < tokens.len() && tokens[k].is_punct('<') {
                    k = matching_close(tokens, k, '<', '>') + 1;
                }
                // `impl Trait for Type` is a trait impl — skip. `impl Name {`
                // is inherent.
                if k < tokens.len() && tokens[k].is_punct('{') {
                    let close = matching_close(tokens, k, '{', '}');
                    out.push((name, k + 1..close));
                    i = k + 1; // descend: nested impls don't occur, but fns do
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Whether the token at `idx` is part of the field-access sequence
/// `base . field` for the given base identifier set — used to collect
/// `self.x` / `req.x` accesses.
#[must_use]
pub fn accessed_fields(body: &[Tok], base: &str) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        if body[i].is_ident(base)
            && body.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && body.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            out.push(body[i + 2].text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_and_bodies_are_found() {
        let lexed = lex("fn a(x: u64) -> u64 { x + 1 }\nimpl T { fn b(&self) { self.go(); } }");
        let fns = functions(&lexed.tokens);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(fns[0].body.len() >= 3);
    }

    #[test]
    fn struct_fields_are_extracted() {
        let lexed = lex(
            "pub struct S<T> { pub a: u64, b: Vec<HashMap<u64, u64>>, pub(crate) c: T }\n\
             struct Unit;\nstruct Tup(u64);",
        );
        let defs = structs(&lexed.tokens);
        assert_eq!(defs.len(), 1);
        let fields: Vec<_> = defs[0].fields.iter().map(|(f, _)| f.as_str()).collect();
        assert_eq!(fields, vec!["a", "b", "c"]);
    }

    #[test]
    fn inherent_impl_bodies_are_found_and_trait_impls_skipped() {
        let lexed = lex("impl Display for S { fn fmt(&self) {} }\n\
             impl S { fn save_state(&self) { self.a; } }");
        let impls = inherent_impls(&lexed.tokens);
        assert_eq!(impls.len(), 1);
        assert_eq!(impls[0].0, "S");
    }

    #[test]
    fn field_accesses_are_collected() {
        let lexed = lex("fn w(req: &R) { w.u64(req.id); w.u8(req.kind as u8); req.nested.deep; }");
        let f = &functions(&lexed.tokens)[0];
        let fields = accessed_fields(&lexed.tokens[f.body.clone()], "req");
        assert_eq!(fields, vec!["id", "kind", "nested"]);
    }
}
