//! rule `snapshot-coverage`: every field a serialized struct declares must
//! be written *and* read by its snapshot code.
//!
//! Two shapes are recognised:
//!
//! * **snapio-style** (`crates/memctrl/src/snapio.rs`): free functions
//!   `write_x(w, p: &Struct)` / `read_x(..) -> Result<Struct, _>`. The write
//!   body must access every declared field through the parameter; the read
//!   body must mention every field in the `Struct { .. }` literal it builds.
//! * **impl-style**: a struct plus an inherent `impl` providing
//!   `save_state`/`load_state` in the same file. Both bodies must touch every
//!   declared field via `self.field` (or a `Self { .. }` literal).
//!
//! Suppression (`// simlint: allow(snapshot-coverage) <reason>`) is honoured
//! on the function's signature line or on the declaration line of the field
//! itself (useful for transient fields that are intentionally rebuilt).

use std::ops::Range;

use crate::items::{accessed_fields, functions, inherent_impls, structs, FnSpan, StructDef};
use crate::lexer::{Tok, TokKind};
use crate::{Candidate, SourceFile};

/// A candidate plus every extra `(file, line)` where a suppression may sit.
pub struct CrossCandidate {
    /// Index into the scanned-file list where the diagnostic is reported.
    pub file: usize,
    /// The diagnostic itself.
    pub cand: Candidate,
    /// Additional suppression points, possibly in other files (e.g. the
    /// field's declaration line in the defining crate).
    pub also_suppress: Vec<(usize, u32)>,
}

/// Crates whose impl-style `save_state`/`load_state` pairs are checked.
const IMPL_STYLE_CRATES: &[&str] = &["sim", "memctrl", "dram", "cpu", "snap"];

/// Runs the snapshot-coverage analysis across the whole workspace.
pub fn check(files: &[SourceFile]) -> Vec<CrossCandidate> {
    let index = StructIndex::build(files);
    let mut out = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        if sf.file_name == "snapio.rs" {
            check_snapio(files, fi, &index, &mut out);
        }
        if IMPL_STYLE_CRATES.contains(&sf.crate_name.as_str()) {
            check_impl_style(fi, sf, &mut out);
        }
    }
    out
}

/// All non-test named-field struct definitions in the workspace.
struct StructIndex {
    defs: Vec<(usize, StructDef)>,
}

impl StructIndex {
    fn build(files: &[SourceFile]) -> Self {
        let mut defs = Vec::new();
        for (fi, sf) in files.iter().enumerate() {
            for d in structs(&sf.lexed.tokens) {
                if !d.in_test {
                    defs.push((fi, d));
                }
            }
        }
        StructIndex { defs }
    }

    /// Resolves a struct name from the viewpoint of `file`: same file, then
    /// same crate, then unique workspace-wide match.
    fn resolve<'a>(
        &'a self,
        files: &[SourceFile],
        file: usize,
        name: &str,
    ) -> Option<(usize, &'a StructDef)> {
        let mut in_crate = None;
        let mut global = Vec::new();
        for (fi, d) in &self.defs {
            if d.name != name {
                continue;
            }
            if *fi == file {
                return Some((*fi, d));
            }
            if files[*fi].crate_name == files[file].crate_name && in_crate.is_none() {
                in_crate = Some((*fi, d));
            }
            global.push((*fi, d));
        }
        in_crate.or(if global.len() == 1 {
            Some(global[0])
        } else {
            None
        })
    }
}

/// snapio-style: pair `write_*`/`read_*` free functions with the structs
/// they serialize.
fn check_snapio(
    files: &[SourceFile],
    fi: usize,
    index: &StructIndex,
    out: &mut Vec<CrossCandidate>,
) {
    let toks = &files[fi].lexed.tokens;
    for f in functions(toks) {
        if toks.get(f.body.start).is_none_or(|t| t.in_test) {
            continue;
        }
        if f.name.starts_with("write_") {
            // The serialized value is the last parameter: `name: &Struct`.
            let params = split_params(&toks[f.params.clone()]);
            let Some(last) = params.last() else { continue };
            let Some((pname, ty)) = param_name_and_type(&toks[f.params.clone()], last) else {
                continue;
            };
            let Some((def_fi, def)) = index.resolve(files, fi, &ty) else {
                continue;
            };
            let touched = accessed_fields(&toks[f.body.clone()], &pname);
            report_missing(fi, def_fi, def, &touched, &f, "write", out);
        } else if f.name.starts_with("read_") {
            // Return type `-> Result<Struct, _>`.
            let ret = &toks[f.ret.clone()];
            let mut ty = None;
            for i in 0..ret.len() {
                if ret[i].is_ident("Result")
                    && ret.get(i + 1).is_some_and(|t| t.is_punct('<'))
                    && ret.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    ty = Some(ret[i + 2].text.clone());
                    break;
                }
            }
            let Some(ty) = ty else { continue };
            let Some((def_fi, def)) = index.resolve(files, fi, &ty) else {
                continue;
            };
            let Some(mentioned) = struct_literal_fields(&toks[f.body.clone()], &ty) else {
                // No literal found, or a `..` spread: nothing checkable.
                continue;
            };
            report_missing(fi, def_fi, def, &mentioned, &f, "read", out);
        }
    }
}

/// impl-style: `struct S { .. }` + `impl S { fn save_state / fn load_state }`
/// in the same file.
fn check_impl_style(fi: usize, sf: &SourceFile, out: &mut Vec<CrossCandidate>) {
    let toks = &sf.lexed.tokens;
    let defs = structs(toks);
    if defs.is_empty() {
        return;
    }
    let fns = functions(toks);
    for (impl_name, impl_body) in inherent_impls(toks) {
        let Some(def) = defs.iter().find(|d| !d.in_test && d.name == impl_name) else {
            continue;
        };
        let in_impl = |f: &&FnSpan| f.body.start >= impl_body.start && f.body.end <= impl_body.end;
        let save = fns.iter().filter(in_impl).find(|f| f.name == "save_state");
        let load = fns.iter().filter(in_impl).find(|f| f.name == "load_state");
        let (Some(save), Some(load)) = (save, load) else {
            continue;
        };
        for f in [save, load] {
            let body = &toks[f.body.clone()];
            if body.first().is_none_or(|t| t.in_test) {
                continue;
            }
            let mut touched = accessed_fields(body, "self");
            // `load_state` may rebuild via `Name { field, .. }` literals.
            for literal_name in [def.name.as_str(), "Self"] {
                if let Some(more) = struct_literal_fields(body, literal_name) {
                    touched.extend(more);
                }
            }
            report_missing(fi, fi, def, &touched, f, &f.name, out);
        }
    }
}

fn report_missing(
    fi: usize,
    def_fi: usize,
    def: &StructDef,
    touched: &[String],
    f: &FnSpan,
    dir: &str,
    out: &mut Vec<CrossCandidate>,
) {
    for (field, field_line) in &def.fields {
        if touched.iter().any(|t| t == field) {
            continue;
        }
        out.push(CrossCandidate {
            file: fi,
            cand: Candidate::new(
                "snapshot-coverage",
                f.line,
                format!(
                    "`{}::{}` is not covered by `{}` (`fn {}`): snapshot \
                     save/load must touch every declared field",
                    def.name, field, dir, f.name
                ),
            ),
            also_suppress: vec![(def_fi, *field_line)],
        });
    }
}

/// Splits a parameter token range on top-level commas; returns sub-ranges
/// relative to the input slice.
fn split_params(params: &[Tok]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, t) in params.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            out.push(start..i);
            start = i + 1;
        }
    }
    if start < params.len() {
        out.push(start..params.len());
    }
    out
}

/// `name: &Struct` → `(name, Struct)`. The parameter name is the first
/// identifier (skipping `mut`); the type ident is the last identifier.
fn param_name_and_type(params: &[Tok], range: &Range<usize>) -> Option<(String, String)> {
    let toks = &params[range.clone()];
    let name = toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")?
        .text
        .clone();
    let colon = toks.iter().position(|t| t.is_punct(':'))?;
    let ty = toks[colon + 1..]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")?
        .text
        .clone();
    Some((name, ty))
}

/// Field names mentioned in `Name { .. }` struct literals inside `body`:
/// top-level identifiers followed by `:` (explicit) or by `,`/`}` (shorthand).
/// Returns `None` when no literal is found or a `..` spread makes the list
/// unverifiable.
fn struct_literal_fields(body: &[Tok], name: &str) -> Option<Vec<String>> {
    let mut out = Vec::new();
    let mut found = false;
    let mut i = 0;
    while i < body.len() {
        if body[i].is_ident(name) && body.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            found = true;
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < body.len() {
                let t = &body[j];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 {
                    if t.is_punct('.') && body.get(j + 1).is_some_and(|n| n.is_punct('.')) {
                        // `..base` spread: unverifiable field list.
                        return None;
                    }
                    if t.kind == TokKind::Ident {
                        let next = body.get(j + 1);
                        let explicit = next.is_some_and(|n| n.is_punct(':'))
                            && !body.get(j + 2).is_some_and(|n| n.is_punct(':'));
                        let shorthand = next.is_some_and(|n| n.is_punct(',') || n.is_punct('}'));
                        if explicit || shorthand {
                            out.push(t.text.clone());
                        }
                        if explicit {
                            // Skip the value expression up to the field comma.
                            let mut d = 0i32;
                            j += 2;
                            while j < body.len() {
                                let u = &body[j];
                                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                                    d += 1;
                                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                                    if d == 0 {
                                        j -= 1; // let the outer loop close the brace
                                        break;
                                    }
                                    d -= 1;
                                } else if u.is_punct(',') && d == 0 {
                                    break;
                                }
                                j += 1;
                            }
                        }
                    }
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    if found {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sf(crate_name: &str, file_name: &str, src: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_owned(),
            file_name: file_name.to_owned(),
            rel_path: format!("crates/{crate_name}/src/{file_name}"),
            lexed: lex(src),
        }
    }

    #[test]
    fn snapio_write_missing_field_is_reported() {
        let files = vec![
            sf(
                "memctrl",
                "request.rs",
                "pub struct Req { pub id: u64, pub addr: u64 }",
            ),
            sf(
                "memctrl",
                "snapio.rs",
                "pub fn write_req(w: &mut W, req: &Req) { w.u64(req.id); }\n\
                 pub fn read_req(r: &mut R) -> Result<Req, E> {\n\
                   Ok(Req { id: r.u64()?, addr: r.u64()? })\n}",
            ),
        ];
        let hits = check(&files);
        assert_eq!(hits.len(), 1, "only the write side misses `addr`");
        assert!(hits[0].cand.message.contains("Req::addr"));
        assert!(hits[0].cand.message.contains("write"));
    }

    #[test]
    fn snapio_read_literal_missing_field_is_reported() {
        let files = vec![sf(
            "memctrl",
            "snapio.rs",
            "pub struct Loc { pub rank: u8, pub bank: u8 }\n\
             pub fn write_loc(w: &mut W, loc: &Loc) { w.u8(loc.rank); w.u8(loc.bank); }\n\
             pub fn read_loc(r: &mut R) -> Result<Loc, E> { Ok(Loc { rank: r.u8()? }) }",
        )];
        let hits = check(&files);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].cand.message.contains("Loc::bank"));
        assert!(hits[0].cand.message.contains("read"));
    }

    #[test]
    fn impl_style_missing_field_is_reported_and_full_coverage_passes() {
        let bad = vec![sf(
            "dram",
            "state.rs",
            "pub struct S { a: u64, b: u64 }\n\
             impl S {\n\
               pub fn save_state(&self, w: &mut W) { w.u64(self.a); w.u64(self.b); }\n\
               pub fn load_state(&mut self, r: &mut R) { self.a = r.u64(); }\n}",
        )];
        let hits = check(&bad);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].cand.message.contains("S::b"));
        assert!(hits[0].cand.message.contains("load_state"));

        let good = vec![sf(
            "dram",
            "state.rs",
            "pub struct S { a: u64, b: u64 }\n\
             impl S {\n\
               pub fn save_state(&self, w: &mut W) { w.u64(self.a); w.u64(self.b); }\n\
               pub fn load_state(&mut self, r: &mut R) { self.a = r.u64(); self.b = r.u64(); }\n}",
        )];
        assert!(check(&good).is_empty());
    }

    #[test]
    fn shorthand_and_spread_literals() {
        let shorthand = vec![sf(
            "memctrl",
            "snapio.rs",
            "pub struct P { x: u64, y: u64 }\n\
             pub fn write_p(w: &mut W, p: &P) { w.u64(p.x); w.u64(p.y); }\n\
             pub fn read_p(r: &mut R) -> Result<P, E> { let x = r.u64()?; let y = r.u64()?; Ok(P { x, y }) }",
        )];
        assert!(check(&shorthand).is_empty());

        let spread = vec![sf(
            "memctrl",
            "snapio.rs",
            "pub struct P { x: u64, y: u64 }\n\
             pub fn write_p(w: &mut W, p: &P) { w.u64(p.x); w.u64(p.y); }\n\
             pub fn read_p(r: &mut R) -> Result<P, E> { Ok(P { x: r.u64()?, ..Default::default() }) }",
        )];
        assert!(
            check(&spread).is_empty(),
            "`..` spread is unverifiable, not wrong"
        );
    }
}
