//! The token-level rules: everything that can be decided from one file's
//! token stream plus its crate name.

use crate::lexer::{LexedFile, Tok, TokKind};
use crate::Candidate;

/// Crates whose non-test code must stay deterministic (rule `hash-iter`),
/// I/O-free (rule `io-access`) and free of unordered float merges.
pub const SIM_CRATES: &[&str] = &["sim", "memctrl", "dram", "cpu"];

/// Library crates where panicking on reachable paths is forbidden
/// (rule `panic`). `bench` is the CLI/orchestration crate and exempt.
pub const LIBRARY_CRATES: &[&str] = &[
    "snap",
    "telemetry",
    "cpu",
    "dram",
    "memctrl",
    "workloads",
    "sim",
    "cloudmc",
];

/// Crates allowed to read the wall clock (rule `wall-clock`): telemetry
/// owns the profiling sinks, bench measures host time by design.
pub const WALL_CLOCK_CRATES: &[&str] = &["telemetry", "bench"];

/// Crates covered by the `float-merge` rule (telemetry owns the histogram
/// merge helpers, so it is checked too).
pub const FLOAT_MERGE_CRATES: &[&str] = &["sim", "memctrl", "dram", "cpu", "telemetry"];

/// The designated sorted-iteration helper module: the one place hash-map
/// iteration is legal in the determinism-critical crates.
pub const SORTED_ITER_HELPER: &str = "det.rs";

/// Iteration-inducing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// rule `hash-iter`: no `HashMap`/`HashSet` iteration in the simulation
/// crates' non-test code — hash order is nondeterministic across runs and
/// platforms, so any iteration that feeds stats, snapshots or event order
/// must go through `cloudmc_snap::det`.
pub fn hash_iter(crate_name: &str, file_name: &str, lexed: &LexedFile, out: &mut Vec<Candidate>) {
    if !SIM_CRATES.contains(&crate_name) || file_name == SORTED_ITER_HELPER {
        return;
    }
    let toks = &lexed.tokens;
    let hash_idents = declared_hash_idents(toks);
    if hash_idents.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident || !hash_idents.contains(&t.text) {
            continue;
        }
        // `ident.iter()`-style calls.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.iter().any(|m| n.is_ident(m)))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            out.push(Candidate::new(
                "hash-iter",
                toks[i + 2].line,
                format!(
                    "iteration over hash container `{}` via `.{}()`; use the \
                     sorted helpers in `cloudmc_snap::det` for deterministic order",
                    t.text,
                    toks[i + 2].text
                ),
            ));
        }
        // `for x in &map` / `for x in map` loops.
        if i >= 1
            && (toks[i - 1].is_ident("in")
                || (toks[i - 1].is_punct('&') && i >= 2 && toks[i - 2].is_ident("in")))
        {
            out.push(Candidate::new(
                "hash-iter",
                t.line,
                format!(
                    "`for` loop over hash container `{}`; hash order is \
                     nondeterministic — use `cloudmc_snap::det`",
                    t.text
                ),
            ));
        }
    }
}

/// Identifiers declared in this file with a `HashMap`/`HashSet` type:
/// `name: HashMap<..>` field/param declarations and
/// `let name = HashMap::new()` style bindings.
fn declared_hash_idents(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk backwards over a path prefix (`std::collections::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
            j -= 3; // the path segment ident before `::`
        }
        if j == 0 {
            continue;
        }
        let before = &toks[j - 1];
        let name = if before.is_punct(':') && j >= 2 {
            // `name: HashMap<..>`
            Some(&toks[j - 2])
        } else if before.is_punct('=') && j >= 2 {
            // `let [mut] name = HashMap::new()`
            let mut k = j - 2;
            if toks[k].kind != TokKind::Ident {
                None
            } else {
                if toks[k].is_ident("mut") && k >= 1 {
                    k -= 1;
                }
                Some(&toks[k])
            }
        } else {
            None
        };
        if let Some(name) = name {
            if name.kind == TokKind::Ident && !out.contains(&name.text) {
                out.push(name.text.clone());
            }
        }
    }
    out
}

/// rule `wall-clock`: `Instant::now`/`SystemTime` must never leak into
/// simulated state — wall-clock reads live in `telemetry` and `bench` only,
/// plus explicitly annotated profile-gated sites.
pub fn wall_clock(crate_name: &str, lexed: &LexedFile, out: &mut Vec<Candidate>) {
    if WALL_CLOCK_CRATES.contains(&crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if toks[i].is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(Candidate::new(
                "wall-clock",
                toks[i].line,
                "`Instant::now` outside telemetry/bench: wall-clock time must \
                 not influence simulated state"
                    .to_owned(),
            ));
        }
        if toks[i].is_ident("SystemTime") {
            out.push(Candidate::new(
                "wall-clock",
                toks[i].line,
                "`SystemTime` outside telemetry/bench: wall-clock time must \
                 not influence simulated state"
                    .to_owned(),
            ));
        }
    }
}

/// rule `panic`: library-crate non-test code must return typed errors, not
/// panic. `.unwrap()`, `.expect(..)`, `panic!`, `unimplemented!` and `todo!`
/// need an explicit `// simlint: allow(panic) <reason>` annotation.
pub fn panic_paths(crate_name: &str, lexed: &LexedFile, out: &mut Vec<Candidate>) {
    if !LIBRARY_CRATES.contains(&crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let preceded_by_dot = i >= 1 && toks[i - 1].is_punct('.');
        if preceded_by_dot
            && t.text == "unwrap"
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            out.push(Candidate::new(
                "panic",
                t.line,
                "`.unwrap()` on a library path: return a typed error or \
                 annotate the invariant"
                    .to_owned(),
            ));
        }
        if preceded_by_dot && t.text == "expect" && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(Candidate::new(
                "panic",
                t.line,
                "`.expect(..)` on a library path: return a typed error or \
                 annotate the invariant"
                    .to_owned(),
            ));
        }
        if matches!(t.text.as_str(), "panic" | "unimplemented" | "todo")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && !preceded_by_dot
        {
            out.push(Candidate::new(
                "panic",
                t.line,
                format!(
                    "`{}!` on a library path: return a typed error or annotate \
                     the invariant",
                    t.text
                ),
            ));
        }
    }
}

/// rule `no-unsafe`: the workspace is 100% safe Rust; `unsafe` is rejected
/// everywhere, test code included, with no annotation escape.
pub fn no_unsafe(lexed: &LexedFile, out: &mut Vec<Candidate>) {
    for t in &lexed.tokens {
        if t.is_ident("unsafe") {
            out.push(Candidate::new(
                "no-unsafe",
                t.line,
                "`unsafe` is forbidden throughout the workspace".to_owned(),
            ));
        }
    }
}

/// rule `float-merge`: thread-merged statistics must accumulate in integers
/// (exact, order-independent); any `f32`/`f64` inside a `merge*` function in
/// the simulation/telemetry crates breaks bit-identical stats across thread
/// counts.
pub fn float_merge(crate_name: &str, lexed: &LexedFile, out: &mut Vec<Candidate>) {
    if !FLOAT_MERGE_CRATES.contains(&crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for f in crate::items::functions(toks) {
        if !f.name.starts_with("merge") {
            continue;
        }
        for t in &toks[f.body] {
            if t.in_test {
                continue;
            }
            if t.is_ident("f32") || t.is_ident("f64") {
                out.push(Candidate::new(
                    "float-merge",
                    t.line,
                    format!(
                        "`{}` inside `fn {}`: thread-merged stats must \
                         accumulate in integers for order-independent results",
                        t.text, f.name
                    ),
                ));
            }
        }
    }
}

/// rule `io-access`: the simulation crates never touch the filesystem or
/// process environment — I/O lives in `bench` and the `telemetry` sinks.
pub fn io_access(crate_name: &str, lexed: &LexedFile, out: &mut Vec<Candidate>) {
    if !SIM_CRATES.contains(&crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if toks[i].is_ident("std")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("fs") || t.is_ident("env"))
        {
            out.push(Candidate::new(
                "io-access",
                toks[i].line,
                format!(
                    "`std::{}` in a simulation crate: file/environment access \
                     belongs in bench or the telemetry sinks",
                    toks[i + 3].text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: &str, crate_name: &str, src: &str) -> Vec<Candidate> {
        let lexed = lex(src);
        let mut out = Vec::new();
        match rule {
            "hash-iter" => hash_iter(crate_name, "x.rs", &lexed, &mut out),
            "wall-clock" => wall_clock(crate_name, &lexed, &mut out),
            "panic" => panic_paths(crate_name, &lexed, &mut out),
            "no-unsafe" => no_unsafe(&lexed, &mut out),
            "float-merge" => float_merge(crate_name, &lexed, &mut out),
            "io-access" => io_access(crate_name, &lexed, &mut out),
            _ => unreachable!(),
        }
        out
    }

    #[test]
    fn hash_iteration_is_flagged_only_in_sim_crates() {
        let src = "struct S { m: HashMap<u64, u64> }\n\
                   fn f(s: &S) { for v in s.m.values() { use_it(v); } }";
        assert!(!run("hash-iter", "sim", src).is_empty());
        assert!(run("hash-iter", "bench", src).is_empty());
    }

    #[test]
    fn hash_lookup_is_not_iteration() {
        let src = "struct S { m: HashMap<u64, u64> }\n\
                   fn f(s: &mut S) { s.m.insert(1, 2); s.m.remove(&1); s.m.get(&1); s.m.clear(); }";
        assert!(run("hash-iter", "sim", src).is_empty());
    }

    #[test]
    fn for_loop_over_hash_set_is_flagged() {
        let src = "fn f() { let mut marked = HashSet::new(); for x in &marked { go(x); } }";
        assert!(!run("hash-iter", "memctrl", src).is_empty());
    }

    #[test]
    fn wall_clock_is_flagged_outside_telemetry() {
        let src = "fn f() -> Instant { Instant::now() }";
        assert!(!run("wall-clock", "sim", src).is_empty());
        assert!(run("wall-clock", "telemetry", src).is_empty());
        assert!(run("wall-clock", "bench", src).is_empty());
    }

    #[test]
    fn panics_are_flagged_in_library_code_but_not_tests() {
        let src = "fn f(x: Option<u64>) -> u64 { x.unwrap() }\n\
                   #[cfg(test)] mod tests { fn g(x: Option<u64>) -> u64 { x.unwrap() } }";
        let hits = run("panic", "sim", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
        assert!(run("panic", "bench", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<u64>) -> u64 { x.unwrap_or(3).max(x.unwrap_or_default()) }";
        assert!(run("panic", "sim", src).is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let src = "fn f() { panic!(\"boom\"); unimplemented!(); todo!(); }";
        assert_eq!(run("panic", "workloads", src).len(), 3);
    }

    #[test]
    fn unsafe_is_flagged_everywhere() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert!(!run("no-unsafe", "bench", src).is_empty());
    }

    #[test]
    fn float_in_merge_fn_is_flagged() {
        let src = "impl S { fn merge(&mut self, o: &S) { self.x += o.x as f64; } }";
        assert!(!run("float-merge", "memctrl", src).is_empty());
        let ok = "impl S { fn merge(&mut self, o: &S) { self.x += o.x; }\n\
                  fn avg(&self) -> f64 { self.x as f64 } }";
        assert!(run("float-merge", "memctrl", ok).is_empty());
    }

    #[test]
    fn io_is_flagged_in_sim_crates_only() {
        let src = "fn f() { std::fs::write(\"x\", \"y\").ok(); let h = std::env::var(\"HOME\"); }";
        assert_eq!(run("io-access", "sim", src).len(), 2);
        assert!(run("io-access", "bench", src).is_empty());
    }
}
