//! rule `stats-schema`: the `SimStats` JSON export is an additive-only
//! contract. Every `\"key\":` literal in `crates/sim/src/stats.rs` must be
//! present in the checked-in `stats_schema.txt`, and every schema key must
//! still exist in the source — removals and renames are violations.
//!
//! `simlint --update-schema` regenerates the file (for *additions*; a
//! removal still has to be argued past review by deleting the line by hand).

use std::collections::BTreeMap;

use crate::lexer::{LexedFile, TokKind};
use crate::Candidate;

/// Path (relative to the workspace root) of the file whose string literals
/// define the stats schema.
pub const STATS_SOURCE: &str = "crates/sim/src/stats.rs";

/// Default schema file name at the workspace root.
pub const SCHEMA_FILE: &str = "stats_schema.txt";

/// Extracts every JSON key emitted by the stats source: occurrences of
/// `\"<ident>\":` inside string literals (the hand-written JSON writer
/// escapes its quotes, so keys appear exactly in that shape in the source).
/// Returns `key -> first line` in sorted order.
#[must_use]
pub fn extract_keys(lexed: &LexedFile) -> BTreeMap<String, u32> {
    let mut keys = BTreeMap::new();
    for t in &lexed.tokens {
        if t.kind != TokKind::Literal || t.in_test {
            continue;
        }
        let bytes = t.text.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b'\\' && bytes[i + 1] == b'"' {
                let mut j = i + 2;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j > i + 2
                    && bytes.get(j) == Some(&b'\\')
                    && bytes.get(j + 1) == Some(&b'"')
                    && bytes.get(j + 2) == Some(&b':')
                {
                    let key = String::from_utf8_lossy(&bytes[i + 2..j]).into_owned();
                    keys.entry(key).or_insert(t.line);
                    i = j + 3;
                    continue;
                }
            }
            i += 1;
        }
    }
    keys
}

/// Parses a schema file: one key per line, `#` comments and blanks ignored.
#[must_use]
pub fn parse_schema(contents: &str) -> Vec<String> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Renders the schema file contents for `--update-schema`.
#[must_use]
pub fn render_schema(keys: &BTreeMap<String, u32>) -> String {
    let mut out = String::from(
        "# SimStats JSON schema — additive-only contract.\n\
         # One key per line; regenerate with `simlint --update-schema`.\n\
         # Removing or renaming a key here (or in crates/sim/src/stats.rs)\n\
         # is a breaking change and fails `simlint`.\n",
    );
    for key in keys.keys() {
        out.push_str(key);
        out.push('\n');
    }
    out
}

/// Diffs source keys against the schema. `schema` is `None` when the schema
/// file is missing entirely.
#[must_use]
pub fn check(source_keys: &BTreeMap<String, u32>, schema: Option<&str>) -> Vec<Candidate> {
    let mut out = Vec::new();
    let Some(schema) = schema else {
        out.push(Candidate::new(
            "stats-schema",
            1,
            format!("schema file `{SCHEMA_FILE}` is missing; run `simlint --update-schema`"),
        ));
        return out;
    };
    let schema_keys = parse_schema(schema);
    for key in &schema_keys {
        if !source_keys.contains_key(key) {
            out.push(Candidate::new(
                "stats-schema",
                1,
                format!(
                    "stats key `{key}` is in `{SCHEMA_FILE}` but no longer emitted \
                     by the source: removals/renames break the additive-only contract"
                ),
            ));
        }
    }
    for (key, line) in source_keys {
        if !schema_keys.iter().any(|k| k == key) {
            out.push(Candidate::new(
                "stats-schema",
                *line,
                format!(
                    "new stats key `{key}` is not in `{SCHEMA_FILE}`; run \
                     `simlint --update-schema` and commit the result"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const SRC: &str = r#"
        fn to_json(&self) -> String {
            let mut s = String::from("{");
            s.push_str(concat!("\"workload\":\"", "\",\"channels\":"));
            s.push_str(&format!("\"cpu_cycles\":{}", self.cpu_cycles));
            s
        }
    "#;

    #[test]
    fn keys_are_extracted_from_escaped_literals() {
        let keys = extract_keys(&lex(SRC));
        let names: Vec<_> = keys.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["channels", "cpu_cycles", "workload"]);
    }

    #[test]
    fn matching_schema_is_clean() {
        let keys = extract_keys(&lex(SRC));
        let schema = render_schema(&keys);
        assert!(check(&keys, Some(&schema)).is_empty());
    }

    #[test]
    fn removed_key_is_a_violation() {
        let keys = extract_keys(&lex(SRC));
        let schema = "workload\nchannels\ncpu_cycles\nretired_key\n";
        let hits = check(&keys, Some(schema));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("retired_key"));
        assert!(hits[0].message.contains("no longer emitted"));
    }

    #[test]
    fn unlisted_new_key_asks_for_update() {
        let keys = extract_keys(&lex(SRC));
        let schema = "workload\nchannels\n";
        let hits = check(&keys, Some(schema));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("cpu_cycles"));
        assert!(hits[0].message.contains("--update-schema"));
    }

    #[test]
    fn missing_schema_file_is_a_violation() {
        let keys = extract_keys(&lex(SRC));
        let hits = check(&keys, None);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("missing"));
    }
}
