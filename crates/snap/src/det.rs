//! Deterministic iteration over hash-ordered containers.
//!
//! `HashMap`/`HashSet` iteration order is unspecified and varies across
//! builds, platforms and hasher seeds, so it must never feed snapshot bytes,
//! stats export or event order. This module is the *designated* sorted
//! helper: `simlint`'s `hash-iter` rule forbids direct hash iteration in the
//! simulation crates and points here instead.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;

/// Entries of `map` as a vector sorted by key.
#[must_use]
pub fn sorted_entries<K, V, S>(map: &HashMap<K, V, S>) -> Vec<(K, V)>
where
    K: Ord + Clone,
    V: Clone,
    S: BuildHasher,
{
    let mut out: Vec<(K, V)> = map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Keys of `map` as a sorted vector.
#[must_use]
pub fn sorted_keys<K, V, S>(map: &HashMap<K, V, S>) -> Vec<K>
where
    K: Ord + Clone,
    S: BuildHasher,
{
    let mut out: Vec<K> = map.keys().cloned().collect();
    out.sort_unstable();
    out
}

/// Items of `set` as a sorted vector.
#[must_use]
pub fn sorted_items<T, S>(set: &HashSet<T, S>) -> Vec<T>
where
    T: Ord + Clone,
    S: BuildHasher,
{
    let mut out: Vec<T> = set.iter().cloned().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_keys_and_items_come_out_sorted() {
        let mut map = HashMap::new();
        for k in [9u64, 1, 5, 3] {
            map.insert(k, k * 10);
        }
        assert_eq!(
            sorted_entries(&map),
            vec![(1, 10), (3, 30), (5, 50), (9, 90)]
        );
        assert_eq!(sorted_keys(&map), vec![1, 3, 5, 9]);

        let set: HashSet<u64> = [4u64, 2, 8].into_iter().collect();
        assert_eq!(sorted_items(&set), vec![2, 4, 8]);
    }
}
