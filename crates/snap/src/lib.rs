//! # cloudmc-snap
//!
//! Hand-rolled, versioned binary snapshot codec for the `cloudmc` workspace
//! (the build environment is offline, so no serde). A snapshot is one
//! contiguous byte buffer:
//!
//! ```text
//! +---------------------+----------------------------------------------+
//! | magic               | 8 bytes, b"CMCSNAP1"                         |
//! | format version      | u32 LE                                       |
//! | config fingerprint  | u64 LE (FNV-1a over the source config)       |
//! | body                | section markers + little-endian primitives   |
//! | checksum            | u64 LE, FNV-1a over all preceding bytes      |
//! +---------------------+----------------------------------------------+
//! ```
//!
//! The body is a flat stream of fixed-width little-endian primitives
//! interleaved with *section markers* — length-prefixed ASCII names written
//! by [`SnapWriter::section`] and validated by [`SnapReader::section`]. A
//! reader that drifts out of phase with the writer (version skew, a buggy
//! `load_state`) fails on the next marker with a typed
//! [`SnapError::SectionMismatch`] naming the byte offset, instead of
//! silently misparsing unrelated state.
//!
//! Corruption anywhere in the file is caught up front: [`SnapReader::new`]
//! verifies length, magic, version, trailing checksum and fingerprint before
//! a single body byte is interpreted, so every failure mode maps to a typed
//! [`SnapError`] — never a panic.
//!
//! Simulator components implement inherent `save_state(&self, &mut
//! SnapWriter)` / `load_state(&mut self, &mut SnapReader)` pairs in their own
//! crates, so private fields stay private and this crate stays dependency-free.

#![forbid(unsafe_code)]

pub mod det;

use std::fmt;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"CMCSNAP1";

/// Current snapshot format version. Bump on any layout change.
pub const FORMAT_VERSION: u32 = 2;

/// Byte tag that introduces a section marker in the body stream.
const SECTION_TAG: u8 = 0xA5;

/// Minimum plausible snapshot size: magic + version + fingerprint + checksum.
const ENVELOPE_BYTES: usize = 8 + 4 + 8 + 8;

/// Typed decode failure. Every variant names enough context (section and
/// byte offset where applicable) to localize the damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with [`MAGIC`] (or is shorter than it).
    BadMagic,
    /// The format version is not one this build can decode.
    UnsupportedVersion(u32),
    /// The snapshot was taken under a different configuration.
    FingerprintMismatch {
        /// Fingerprint of the configuration the restore was attempted with.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The trailing FNV-1a checksum does not match the file contents
    /// (bit-flip or splice anywhere in the envelope or body).
    ChecksumMismatch {
        /// Checksum recomputed over the file contents.
        computed: u64,
        /// Checksum stored in the trailer.
        stored: u64,
    },
    /// The buffer ends before the value being read (truncated file).
    Truncated {
        /// Section being decoded when the buffer ran out.
        section: String,
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// A decoded value is structurally impossible (e.g. a bool that is
    /// neither 0 nor 1, an enum discriminant out of range).
    BadValue {
        /// Section being decoded.
        section: String,
        /// Byte offset of the offending value.
        offset: usize,
        /// Human-readable description of the impossibility.
        what: String,
    },
    /// The next section marker names a different section than the decoder
    /// expected — reader and writer are out of phase.
    SectionMismatch {
        /// Section the decoder expected to find.
        expected: String,
        /// Section name (or its absence) actually found.
        found: String,
        /// Byte offset of the marker.
        offset: usize,
    },
    /// Decoding finished but body bytes remain before the checksum trailer.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
        /// Number of unconsumed body bytes.
        remaining: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad magic (not a cloudmc snapshot)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (expected {FORMAT_VERSION})"
                )
            }
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch (snapshot {found:#018x}, config {expected:#018x})"
            ),
            Self::ChecksumMismatch { computed, stored } => write!(
                f,
                "checksum mismatch (computed {computed:#018x}, stored {stored:#018x})"
            ),
            Self::Truncated { section, offset } => {
                write!(f, "truncated in section `{section}` at offset {offset}")
            }
            Self::BadValue {
                section,
                offset,
                what,
            } => write!(
                f,
                "bad value in section `{section}` at offset {offset}: {what}"
            ),
            Self::SectionMismatch {
                expected,
                found,
                offset,
            } => write!(
                f,
                "expected section `{expected}` at offset {offset}, found {found}"
            ),
            Self::TrailingBytes { offset, remaining } => write!(
                f,
                "{remaining} trailing body byte(s) left unread at offset {offset}"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash — the fingerprint and checksum function.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serializer: accumulates the envelope and body, then seals the buffer with
/// the trailing checksum in [`SnapWriter::finish`].
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Starts a snapshot: writes magic, format version and the config
    /// fingerprint.
    #[must_use]
    pub fn new(fingerprint: u64) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        Self { buf }
    }

    /// Writes a section marker. Pair every call with
    /// [`SnapReader::section`] on the decode side.
    pub fn section(&mut self, name: &str) {
        debug_assert!(name.len() <= u8::MAX as usize && name.is_ascii());
        self.buf.push(SECTION_TAG);
        self.buf.push(name.len() as u8);
        self.buf.extend_from_slice(name.as_bytes());
    }

    /// Writes one `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes one `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes one `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes one `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes one `bool` as a single byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes one `f64` bit-exactly via [`f64::to_bits`].
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed slice of `u64`s.
    pub fn u64_slice(&mut self, values: &[u64]) {
        self.usize(values.len());
        for &v in values {
            self.u64(v);
        }
    }

    /// Writes a length-prefixed slice of `f64`s (bit-exact).
    pub fn f64_slice(&mut self, values: &[f64]) {
        self.usize(values.len());
        for &v in values {
            self.f64(v);
        }
    }

    /// Body bytes written so far (diagnostics / size accounting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written (never true: the envelope is written
    /// by [`SnapWriter::new`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seals the snapshot: appends the FNV-1a checksum over every byte
    /// written so far and returns the finished buffer.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Deserializer over a sealed snapshot buffer.
///
/// [`SnapReader::new`] validates the whole envelope (magic, version,
/// checksum, fingerprint) before any body byte is interpreted; the cursor
/// methods then decode the body and fail typed on truncation, impossible
/// values, or out-of-phase section markers.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    /// Exclusive end of the body (start of the checksum trailer).
    body_end: usize,
    pos: usize,
    section: String,
}

impl<'a> SnapReader<'a> {
    /// Validates the envelope and positions the cursor at the first body
    /// byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`], [`SnapError::UnsupportedVersion`],
    /// [`SnapError::ChecksumMismatch`] or [`SnapError::FingerprintMismatch`]
    /// when the respective envelope field does not check out;
    /// [`SnapError::Truncated`] when the buffer is shorter than the minimum
    /// envelope.
    pub fn new(data: &'a [u8], expected_fingerprint: u64) -> Result<Self, SnapError> {
        if data.len() < ENVELOPE_BYTES {
            if data.len() < MAGIC.len() || data[..MAGIC.len()] != MAGIC {
                return Err(SnapError::BadMagic);
            }
            return Err(SnapError::Truncated {
                section: "envelope".to_owned(),
                offset: data.len(),
            });
        }
        if data[..8] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        // simlint: allow(panic) fixed-width slice of a length-checked buffer
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let body_end = data.len() - 8;
        // simlint: allow(panic) fixed-width slice of a length-checked buffer
        let stored = u64::from_le_bytes(data[body_end..].try_into().expect("8 bytes"));
        let computed = fnv1a(&data[..body_end]);
        if stored != computed {
            return Err(SnapError::ChecksumMismatch { computed, stored });
        }
        // simlint: allow(panic) fixed-width slice of a length-checked buffer
        let found = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
        if found != expected_fingerprint {
            return Err(SnapError::FingerprintMismatch {
                expected: expected_fingerprint,
                found,
            });
        }
        Ok(Self {
            data,
            body_end,
            pos: 20,
            section: "envelope".to_owned(),
        })
    }

    /// Current byte offset of the cursor (diagnostics).
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.pos + n > self.body_end {
            return Err(SnapError::Truncated {
                section: self.section.clone(),
                offset: self.pos,
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes a section marker, failing typed if the next bytes are not a
    /// marker for exactly `name`. Also becomes the section reported by
    /// subsequent truncation/value errors.
    ///
    /// # Errors
    ///
    /// [`SnapError::SectionMismatch`] when the marker is absent or names a
    /// different section; [`SnapError::Truncated`] when the buffer ends
    /// inside the marker.
    pub fn section(&mut self, name: &str) -> Result<(), SnapError> {
        let offset = self.pos;
        let mismatch = |found: String| SnapError::SectionMismatch {
            expected: name.to_owned(),
            found,
            offset,
        };
        let tag = self.take(1)?[0];
        if tag != SECTION_TAG {
            return Err(mismatch(format!("non-marker byte {tag:#04x}")));
        }
        let len = self.take(1)?[0] as usize;
        let bytes = self.take(len)?;
        if bytes != name.as_bytes() {
            return Err(mismatch(format!("`{}`", String::from_utf8_lossy(bytes))));
        }
        self.section = name.to_owned();
        Ok(())
    }

    /// Reads one `u8`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads one `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        // simlint: allow(panic) take(4) yields exactly four bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads one `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        // simlint: allow(panic) take(8) yields exactly eight bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads one `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first;
    /// [`SnapError::BadValue`] when the value overflows `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let offset = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::BadValue {
            section: self.section.clone(),
            offset,
            what: format!("{v} overflows usize"),
        })
    }

    /// Reads one `bool`, rejecting any byte other than 0 or 1.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first;
    /// [`SnapError::BadValue`] for a byte that is neither 0 nor 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::BadValue {
                section: self.section.clone(),
                offset,
                what: format!("bool byte {other:#04x}"),
            }),
        }
    }

    /// Reads one `f64` bit-exactly via [`f64::from_bits`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first;
    /// [`SnapError::BadValue`] for invalid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.bounded_len(1)?;
        let offset = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadValue {
            section: self.section.clone(),
            offset,
            what: "invalid UTF-8".to_owned(),
        })
    }

    /// Reads a sequence length written by the writer's length prefix,
    /// rejecting lengths that cannot fit in the remaining body (`min_elem`
    /// is the smallest possible encoded element size in bytes). Guards Vec
    /// pre-allocation against absurd lengths.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the body ends first;
    /// [`SnapError::BadValue`] for an impossible length.
    pub fn bounded_len(&mut self, min_elem: usize) -> Result<usize, SnapError> {
        let offset = self.pos;
        let len = self.usize()?;
        let remaining = self.body_end - self.pos;
        if len
            .checked_mul(min_elem.max(1))
            .is_none_or(|b| b > remaining)
        {
            return Err(SnapError::BadValue {
                section: self.section.clone(),
                offset,
                what: format!("sequence length {len} exceeds remaining body {remaining}"),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed `Vec<u64>`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] / [`SnapError::BadValue`] as for the
    /// underlying primitives.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapError> {
        let len = self.bounded_len(8)?;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `Vec<f64>` (bit-exact).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] / [`SnapError::BadValue`] as for the
    /// underlying primitives.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, SnapError> {
        let len = self.bounded_len(8)?;
        (0..len).map(|_| self.f64()).collect()
    }

    /// Builds a [`SnapError::BadValue`] at the current cursor position —
    /// for `load_state` implementations rejecting impossible decoded values
    /// (enum discriminants out of range, inconsistent lengths).
    #[must_use]
    pub fn bad_value(&self, what: impl Into<String>) -> SnapError {
        SnapError::BadValue {
            section: self.section.clone(),
            offset: self.pos,
            what: what.into(),
        }
    }

    /// Declares decoding complete: the cursor must sit exactly at the
    /// checksum trailer.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] when body bytes remain unread.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.pos != self.body_end {
            return Err(SnapError::TrailingBytes {
                offset: self.pos,
                remaining: self.body_end - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed() -> Vec<u8> {
        let mut w = SnapWriter::new(0xDEAD_BEEF);
        w.section("alpha");
        w.u64(42);
        w.f64(1.5);
        w.bool(true);
        w.section("beta");
        w.str("hello");
        w.u64_slice(&[7, 8, 9]);
        w.finish()
    }

    #[test]
    fn round_trips_every_primitive() {
        let buf = sealed();
        let mut r = SnapReader::new(&buf, 0xDEAD_BEEF).unwrap();
        r.section("alpha").unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert!(r.bool().unwrap());
        r.section("beta").unwrap();
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.u64_vec().unwrap(), vec![7, 8, 9]);
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = sealed();
        buf[0] ^= 0xFF;
        assert_eq!(
            SnapReader::new(&buf, 0xDEAD_BEEF).unwrap_err(),
            SnapError::BadMagic
        );
    }

    #[test]
    fn version_skew_is_typed() {
        let mut buf = sealed();
        buf[8] = 99;
        // Re-seal so the checksum stays valid and the version check fires.
        let body_end = buf.len() - 8;
        let sum = fnv1a(&buf[..body_end]).to_le_bytes();
        buf[body_end..].copy_from_slice(&sum);
        assert_eq!(
            SnapReader::new(&buf, 0xDEAD_BEEF).unwrap_err(),
            SnapError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn fingerprint_mismatch_is_typed() {
        let buf = sealed();
        assert!(matches!(
            SnapReader::new(&buf, 0x1234).unwrap_err(),
            SnapError::FingerprintMismatch {
                expected: 0x1234,
                ..
            }
        ));
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let buf = sealed();
        for byte in 0..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 1;
            assert!(
                SnapReader::new(&bad, 0xDEAD_BEEF).is_err(),
                "flip at byte {byte} must not validate"
            );
        }
    }

    #[test]
    fn every_truncation_is_caught() {
        let buf = sealed();
        for len in 0..buf.len() {
            assert!(
                SnapReader::new(&buf[..len], 0xDEAD_BEEF).is_err(),
                "truncation to {len} bytes must not validate"
            );
        }
    }

    #[test]
    fn section_mismatch_names_offset() {
        let buf = sealed();
        let mut r = SnapReader::new(&buf, 0xDEAD_BEEF).unwrap();
        let err = r.section("omega").unwrap_err();
        match err {
            SnapError::SectionMismatch {
                expected, offset, ..
            } => {
                assert_eq!(expected, "omega");
                assert_eq!(offset, 20);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let buf = sealed();
        let mut r = SnapReader::new(&buf, 0xDEAD_BEEF).unwrap();
        r.section("alpha").unwrap();
        assert!(matches!(
            r.finish().unwrap_err(),
            SnapError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn display_names_section_and_offset() {
        let err = SnapError::Truncated {
            section: "rank".to_owned(),
            offset: 123,
        };
        let text = err.to_string();
        assert!(text.contains("rank") && text.contains("123"), "{text}");
    }
}
