//! Reduced-scale end-to-end benchmarks: one Criterion target per figure/table
//! of the paper, running the same experiment code as the `repro` binary on a
//! small number of cycles so that `cargo bench` finishes quickly.
//!
//! These serve two purposes: they keep every experiment path exercised and
//! timed, and they document how to regenerate each figure (the full-scale
//! version is `repro <figN>`).

// Criterion's group macros expand to undocumented functions.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cloudmc_bench::{baseline_config, Scale};
use cloudmc_memctrl::{AddressMapping, PagePolicyKind, SchedulerKind};
use cloudmc_sim::run_system;
use cloudmc_workloads::Workload;

fn tiny_scale() -> Scale {
    Scale {
        warmup_cpu_cycles: 2_000,
        measure_cpu_cycles: 12_000,
        seed: 1,
        threads: 1,
    }
}

/// One representative workload per category keeps the benches fast while
/// still covering the scale-out / transactional / decision-support split.
fn representative_workloads() -> [Workload; 3] {
    [Workload::WebSearch, Workload::TpcC1, Workload::TpchQ6]
}

fn bench_scheduler_figures(c: &mut Criterion) {
    // Figures 1-7: user IPC, hit rate, latency, MPKI, queue lengths and
    // bandwidth under each scheduling algorithm.
    let mut group = c.benchmark_group("fig1-7_scheduler_study");
    group.sample_size(10);
    for (label, kind) in [
        ("FR-FCFS", SchedulerKind::FrFcfs),
        ("FCFS_Banks", SchedulerKind::FcfsBanks),
        ("PAR-BS", "par-bs".parse().unwrap()),
        ("ATLAS", "atlas".parse().unwrap()),
        ("RL", "rl".parse().unwrap()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                for w in representative_workloads() {
                    let mut cfg = baseline_config(w, &tiny_scale());
                    cfg.mc.scheduler = kind;
                    let stats = run_system(cfg).unwrap();
                    black_box(stats.user_ipc());
                }
            });
        });
    }
    group.finish();
}

fn bench_fig8_activation_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_single_access_activations");
    group.sample_size(10);
    group.bench_function("baseline", |b| {
        b.iter(|| {
            for w in representative_workloads() {
                let cfg = baseline_config(w, &tiny_scale());
                let stats = run_system(cfg).unwrap();
                black_box(stats.single_access_activation_fraction);
            }
        });
    });
    group.finish();
}

fn bench_page_policy_figures(c: &mut Criterion) {
    // Figures 9-11: row hits, latency and IPC under each page policy.
    let mut group = c.benchmark_group("fig9-11_page_policy_study");
    group.sample_size(10);
    for policy in PagePolicyKind::paper_set() {
        group.bench_function(policy.to_string(), |b| {
            b.iter(|| {
                for w in representative_workloads() {
                    let mut cfg = baseline_config(w, &tiny_scale());
                    cfg.mc.page_policy = policy;
                    let stats = run_system(cfg).unwrap();
                    black_box(stats.row_buffer_hit_rate);
                }
            });
        });
    }
    group.finish();
}

fn bench_channel_figures(c: &mut Criterion) {
    // Figures 12-14 and Table 4: channel count and mapping sweep.
    let mut group = c.benchmark_group("fig12-14_table4_channel_study");
    group.sample_size(10);
    for channels in [1usize, 2, 4] {
        group.bench_function(format!("{channels}_channel"), |b| {
            b.iter(|| {
                for w in representative_workloads() {
                    let mut cfg = baseline_config(w, &tiny_scale());
                    cfg.mc.dram.channels = channels;
                    if channels > 1 {
                        cfg.mc.mapping = AddressMapping::RoChRaBaCo;
                    }
                    let stats = run_system(cfg).unwrap();
                    black_box(stats.user_ipc());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_scheduler_figures,
    bench_fig8_activation_reuse,
    bench_page_policy_figures,
    bench_channel_figures
);
criterion_main!(figures);
