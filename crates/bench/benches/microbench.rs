//! Microbenchmarks of the simulator's hot paths: DRAM command issue,
//! address decoding, scheduler decision making, cache accesses and workload
//! generation.

// Criterion's group macros expand to undocumented functions.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cloudmc_bench::{dense_config, idle_heavy_config, Scale};
use cloudmc_cpu::{Cache, CacheConfig};
use cloudmc_dram::{Command, DramChannel, DramConfig, Location};
use cloudmc_memctrl::{
    key_bank, key_rank, AccessKind, AddressMapping, FrFcfs, McConfig, MemoryController,
    MemoryRequest, RequestQueue, SchedContext, SchedulerImpl, SchedulerKind,
};
use cloudmc_sim::{run_system, EventQueue, SystemConfig};
use cloudmc_workloads::{CoreStream, Workload};

fn bench_dram_channel(c: &mut Criterion) {
    c.bench_function("dram/activate_read_precharge_cycle", |b| {
        let cfg = DramConfig::baseline();
        b.iter_batched(
            || DramChannel::new(&cfg),
            |mut ch| {
                let t = cfg.timing;
                let loc = Location::new(0, 0, 42, 3);
                ch.issue(&Command::activate(loc), 0);
                ch.issue(&Command::read(loc, false), t.t_rcd);
                ch.issue(&Command::precharge(loc), t.t_ras.max(t.t_rcd + t.t_rtp));
                black_box(ch.stats().reads)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_address_mapping(c: &mut Criterion) {
    let cfg = DramConfig::with_channels(4);
    c.bench_function("mapping/decode_all_schemes", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for mapping in AddressMapping::all() {
                for i in 0..64u64 {
                    acc += mapping.decode(black_box(i * 4096 + 64), &cfg).channel;
                }
            }
            acc
        });
    });
}

fn bench_scheduler_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/tick_with_16_pending");
    for kind in [SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || {
                    let mut cfg = McConfig::baseline();
                    cfg.scheduler = kind;
                    let mut mc = MemoryController::new(cfg).unwrap();
                    for i in 0..16u64 {
                        mc.enqueue(
                            MemoryRequest::new(i, AccessKind::Read, i * 0x2_0000, i as usize, 0),
                            0,
                        )
                        .unwrap();
                    }
                    mc
                },
                |mut mc| {
                    let mut done = Vec::new();
                    for cycle in 0..256u64 {
                        mc.tick(cycle, &mut done);
                        black_box(done.len());
                    }
                    mc.stats().reads_completed
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Dispatch cost of the per-cycle scheduler consultation: the devirtualized
/// `SchedulerImpl::FrFcfs` fast path against the same algorithm behind
/// `Box<dyn Scheduler>` (how every scheduler was called before the enum
/// dispatch was introduced).
fn bench_scheduler_dispatch(c: &mut Criterion) {
    let cfg = DramConfig::baseline();
    let channel = DramChannel::new(&cfg);
    let mut read_q = RequestQueue::new(64);
    let write_q = RequestQueue::new(64);
    for i in 0..16u64 {
        let mc = McConfig::baseline();
        let decoded = mc.mapping.decode(i * 0x2_0000, &mc.dram);
        read_q
            .push(
                MemoryRequest::new(i, AccessKind::Read, i * 0x2_0000, i as usize, 0),
                decoded.location,
                0,
            )
            .unwrap();
    }
    let mut group = c.benchmark_group("scheduler/dispatch_pick_16_pending");
    for (label, mut sched) in [
        ("enum_frfcfs", SchedulerImpl::FrFcfs(FrFcfs::new())),
        (
            "boxed_frfcfs",
            SchedulerImpl::Boxed(Box::new(FrFcfs::new())),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let ctx = SchedContext {
                    now: 0,
                    channel: &channel,
                    read_q: &read_q,
                    write_q: &write_q,
                    write_mode: false,
                    num_cores: 16,
                };
                black_box(sched.pick(black_box(&ctx)))
            });
        });
    }
    group.finish();
}

/// The acceptance benchmark of the kernel refactor: a full 16-core baseline
/// run, dominated by the per-cycle hot loop (fill delivery, request tracking,
/// scheduler dispatch).
fn bench_system_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("system/16_core_baseline_run");
    group.sample_size(10);
    group.bench_function("ds_20k_cycles", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::baseline(Workload::DataServing);
            cfg.warmup_cpu_cycles = 2_000;
            cfg.measure_cpu_cycles = 18_000;
            black_box(run_system(cfg).unwrap().user_ipc())
        });
    });
    group.finish();
}

/// The acceptance benchmark of the event-horizon fast-forward: simulated
/// CPU cycles per second on an idle-heavy (2% intensity) stream versus the
/// dense TPC-H Q6 scan, each with the fast-forward on and off. The idle
/// point is where skipping dead cycles pays (the differential test pins the
/// results to be bit-identical); the dense point guards against the horizon
/// scan slowing the busy path down.
fn bench_fast_forward(c: &mut Criterion) {
    let scale = Scale {
        warmup_cpu_cycles: 5_000,
        measure_cpu_cycles: 45_000,
        seed: 1,
        threads: 1,
    };
    let mut group = c.benchmark_group("system/fast_forward_50k_cycles");
    group.sample_size(10);
    for (label, mut cfg) in [
        ("idle_heavy_naive", idle_heavy_config(&scale)),
        ("idle_heavy_horizon", idle_heavy_config(&scale)),
        ("idle_heavy_event", idle_heavy_config(&scale)),
        ("tpch_q6_naive", dense_config(&scale)),
        ("tpch_q6_horizon", dense_config(&scale)),
        ("tpch_q6_event", dense_config(&scale)),
    ] {
        cfg.fast_forward = !label.ends_with("naive");
        cfg.event_driven = label.ends_with("event");
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    run_system(black_box(cfg.clone()))
                        .unwrap()
                        .user_instructions,
                )
            });
        });
    }
    group.finish();
}

/// The event kernel's calendar queue under its three access patterns. Dense
/// keeps every deadline inside the 64-cycle bucket ring (bitmask + deque
/// ops); sparse pushes deadlines past the window into the `BTreeMap`
/// overflow level and migrates them back as the window slides; decrease-key
/// re-posts each event at an earlier deadline timer-wheel style, paying for
/// the stale entry with one extra (spurious) pop.
fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/event_queue");
    group.bench_function("dense_push_pop_4k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            let mut popped = 0u64;
            for i in 0..4_096u32 {
                let now = u64::from(i);
                q.push(now + u64::from(i % 48), i);
                while let Some(item) = q.pop_due(now) {
                    popped += u64::from(black_box(item));
                }
            }
            while let Some(due) = q.next_due() {
                while let Some(item) = q.pop_due(due) {
                    popped += u64::from(black_box(item));
                }
            }
            popped
        });
    });
    group.bench_function("sparse_push_pop_4k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..4_096u32 {
                q.push(u64::from(i) * 97 + 1_000, i);
            }
            let mut popped = 0u64;
            while let Some(due) = q.next_due() {
                while let Some(item) = q.pop_due(due) {
                    popped += u64::from(black_box(item));
                }
            }
            popped
        });
    });
    group.bench_function("decrease_key_4k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..4_096u32 {
                q.push(10_000 + u64::from(i % 512), i);
                q.push(u64::from(i % 64), i);
            }
            let mut popped = 0u64;
            while let Some(due) = q.next_due() {
                while let Some(item) = q.pop_due(due) {
                    popped += u64::from(black_box(item));
                }
            }
            popped
        });
    });
    group.finish();
}

/// The flat `u64` key-column scans the schedulers and page policies lean on
/// every controller cycle: row-hit probes over a full queue, and a raw walk
/// of the packed (rank, bank, row) column.
fn bench_queue_scan(c: &mut Criterion) {
    let mc = McConfig::baseline();
    let mut queue = RequestQueue::new(64);
    for i in 0..64u64 {
        let addr = i * 0x1_2000 + 0x40;
        let decoded = mc.mapping.decode(addr, &mc.dram);
        queue
            .push(
                MemoryRequest::new(i, AccessKind::Read, addr, (i % 16) as usize, 0),
                decoded.location,
                0,
            )
            .unwrap();
    }
    let mut group = c.benchmark_group("queue/soa_scan_64_pending");
    group.bench_function("row_hit_probe_all_banks", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for rank in 0..2usize {
                for bank in 0..8usize {
                    hits += usize::from(queue.any_hit(rank, bank, black_box(3)));
                }
            }
            hits
        });
    });
    group.bench_function("keys_column_walk", |b| {
        b.iter(|| {
            queue
                .keys()
                .iter()
                .map(|&k| key_rank(k) + key_bank(k))
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1_access_stream", |b| {
        let mut cache = Cache::new(CacheConfig::l1_baseline());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            cache.access(black_box((i * 64) % (64 * 1024)), i.is_multiple_of(4))
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/next_op", |b| {
        let mut stream = CoreStream::new(Workload::DataServing.spec(), 0, 1);
        b.iter(|| black_box(stream.next_op()));
    });
}

criterion_group!(
    benches,
    bench_dram_channel,
    bench_address_mapping,
    bench_scheduler_tick,
    bench_scheduler_dispatch,
    bench_system_baseline,
    bench_fast_forward,
    bench_event_queue,
    bench_queue_scan,
    bench_cache,
    bench_workload_generation
);
criterion_main!(benches);
