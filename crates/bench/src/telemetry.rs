//! Telemetry overhead tracking: wall-clock cost of each observability layer
//! (interval time series, span tracing, kernel self-profiler) on the dense
//! TPC-H Q6 scan — the stream with the least idle time for the hooks to hide
//! in. The layer stack is cumulative: `series` enables the time series,
//! `series_spans` adds span tracing, `all` adds the self-profiler.
//!
//! The `repro telemetry` experiment serializes the result as
//! `BENCH_telemetry.json`. Two invariants are asserted as a side effect of
//! measuring:
//!
//! - every layer leaves `SimStats` bit-identical to the telemetry-off run
//!   (observation must not perturb the simulation), and
//! - the enabled layers actually produce data (non-empty series/spans and a
//!   profile whose phase times were populated).
//!
//! The `off` point is measured against a separate telemetry-off reference
//! run of the same binary, so its "overhead" is an honest A/B bound on what
//! the disabled hooks cost (noise included); the `repro` binary gates it at
//! ≤2% at standard scale and above.

use std::time::Instant;

use cloudmc_sim::{SimStats, Simulator, SystemConfig};
use cloudmc_telemetry::{KernelProfile, TelemetryConfig};

use crate::experiments::Scale;
use crate::fastforward::dense_config;

/// Timed repetitions per layer; the fastest is reported (minimum damps
/// scheduler noise far better than the mean on short runs).
pub const TELEMETRY_REPEATS: usize = 3;

/// One measured observability layer.
#[derive(Debug, Clone)]
pub struct TelemetryPoint {
    /// Layer name (`off`, `series`, `series_spans`, `all`).
    pub name: &'static str,
    /// Best-of-[`TELEMETRY_REPEATS`] wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Simulated CPU cycles per wall-clock second at that best time.
    pub cycles_per_sec: f64,
    /// Relative cost versus the telemetry-off reference run
    /// (`wall / off_wall - 1`; negative values are measurement noise).
    pub overhead_vs_off: f64,
    /// Interval samples the layer collected (0 when the series is off).
    pub series_samples: usize,
    /// Request spans the layer collected (0 when tracing is off).
    pub spans: usize,
}

/// The full overhead report for `BENCH_telemetry.json`.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// One point per layer, `off` first.
    pub points: Vec<TelemetryPoint>,
    /// Kernel self-profile from the `all` layer's fastest run.
    pub profile: Option<KernelProfile>,
}

/// The dense benchmark configuration with `layers` applied.
#[must_use]
pub fn telemetry_config(scale: &Scale, layers: TelemetryConfig) -> SystemConfig {
    let mut cfg = dense_config(scale);
    cfg.telemetry = layers;
    cfg
}

/// The cumulative layer stack measured by the study, `off` first.
#[must_use]
pub fn telemetry_layers(scale: &Scale) -> Vec<(&'static str, TelemetryConfig)> {
    // ~32 samples over the measurement window: enough for a dashboard,
    // sparse enough that sampling cost is dominated by the hooks, not the
    // sample computation itself.
    let interval = (scale.measure_cpu_cycles / 32).max(1);
    let series = TelemetryConfig {
        sample_interval: interval,
        ..TelemetryConfig::off()
    };
    let series_spans = TelemetryConfig {
        span_sample_every: 8,
        ..series.clone()
    };
    let all = TelemetryConfig {
        profile_kernel: true,
        ..series_spans.clone()
    };
    vec![
        ("off", TelemetryConfig::off()),
        ("series", series),
        ("series_spans", series_spans),
        ("all", all),
    ]
}

struct LayerRun {
    stats: SimStats,
    wall_seconds: f64,
    series_samples: usize,
    spans: usize,
    profile: Option<KernelProfile>,
}

fn timed_layer(cfg: &SystemConfig) -> LayerRun {
    let mut best: Option<LayerRun> = None;
    for _ in 0..TELEMETRY_REPEATS {
        let mut sim = Simulator::new(cfg.clone()).expect("valid benchmark configuration");
        let start = Instant::now();
        sim.run_warmup();
        let stats = sim
            .run_measurement()
            .expect("telemetry benchmark run failed");
        let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
        let run = LayerRun {
            series_samples: sim.system().telemetry_series().len(),
            spans: sim.system().telemetry_spans().len(),
            profile: sim.system_mut().kernel_profile(),
            stats,
            wall_seconds,
        };
        if best
            .as_ref()
            .is_none_or(|b| run.wall_seconds < b.wall_seconds)
        {
            best = Some(run);
        }
    }
    best.expect("at least one repeat")
}

/// Runs the overhead study at `scale`: a telemetry-off reference, then every
/// layer of [`telemetry_layers`], asserting bit-identical statistics and
/// non-empty telemetry output along the way.
///
/// # Panics
///
/// Panics if any layer perturbs `SimStats`, or if an enabled layer produced
/// no data — both indicate the telemetry plumbing is broken.
#[must_use]
pub fn telemetry_study(scale: &Scale) -> TelemetryReport {
    let total_cycles = scale.warmup_cpu_cycles + scale.measure_cpu_cycles;
    // Warm the host caches with one throwaway run, then take the reference.
    let reference_cfg = telemetry_config(scale, TelemetryConfig::off());
    let _ = timed_layer(&reference_cfg);
    let reference = timed_layer(&reference_cfg);
    let mut points = Vec::new();
    let mut profile = None;
    for (name, layers) in telemetry_layers(scale) {
        let cfg = telemetry_config(scale, layers.clone());
        let run = timed_layer(&cfg);
        assert_eq!(
            run.stats, reference.stats,
            "layer `{name}` must leave SimStats bit-identical to telemetry off"
        );
        if layers.series_enabled() {
            assert!(
                run.series_samples > 0,
                "layer `{name}` collected no samples"
            );
        }
        if layers.spans_enabled() {
            assert!(run.spans > 0, "layer `{name}` collected no spans");
        }
        if layers.profile_kernel {
            let p = run
                .profile
                .clone()
                .expect("profiler layer returns a profile");
            assert!(p.total_nanos > 0, "profiler recorded no wall time");
            profile = Some(p);
        }
        points.push(TelemetryPoint {
            name,
            wall_seconds: run.wall_seconds,
            cycles_per_sec: total_cycles as f64 / run.wall_seconds,
            overhead_vs_off: run.wall_seconds / reference.wall_seconds - 1.0,
            series_samples: run.series_samples,
            spans: run.spans,
        });
    }
    TelemetryReport { points, profile }
}

impl TelemetryReport {
    /// The measured point for one layer name, if present.
    #[must_use]
    pub fn point(&self, name: &str) -> Option<&TelemetryPoint> {
        self.points.iter().find(|p| p.name == name)
    }

    /// Machine-readable JSON for `BENCH_telemetry.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"telemetry_overhead\",\n");
        out.push_str("  \"unit\": \"wall_seconds_best_of_repeats\",\n");
        out.push_str(&format!(
            "  \"repeats\": {TELEMETRY_REPEATS},\n  \"points\": [\n"
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_seconds\": {:.6}, \
                 \"cycles_per_sec\": {:.0}, \"overhead_vs_off\": {:.4}, \
                 \"series_samples\": {}, \"spans\": {}}}{}\n",
                p.name,
                p.wall_seconds,
                p.cycles_per_sec,
                p.overhead_vs_off,
                p.series_samples,
                p.spans,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        match &self.profile {
            Some(p) => out.push_str(&format!("  \"profile\": {}\n", p.to_json())),
            None => out.push_str("  \"profile\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Human-readable summary for the terminal.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "telemetry overhead on dense TPC-H Q6 (best of repeats; vs telemetry-off reference)\n\
             layer             wall [s]   cycles/s    overhead   samples    spans\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<15} {:>10.4} {:>10.0} {:>+9.2}% {:>9} {:>8}\n",
                p.name,
                p.wall_seconds,
                p.cycles_per_sec,
                p.overhead_vs_off * 100.0,
                p.series_samples,
                p.spans,
            ));
        }
        if let Some(p) = &self.profile {
            out.push_str(&format!(
                "kernel profile (all layers on): frontend {:.1}% backend {:.1}% \
                 event-queue {:.1}% barrier {:.1}%; {} cycles stepped, {} jumped\n",
                p.fraction(cloudmc_telemetry::KernelPhase::Frontend) * 100.0,
                p.fraction(cloudmc_telemetry::KernelPhase::Backend) * 100.0,
                p.fraction(cloudmc_telemetry::KernelPhase::EventQueue) * 100.0,
                p.fraction(cloudmc_telemetry::KernelPhase::Barrier) * 100.0,
                p.stepped_cpu_cycles,
                p.jumped_cpu_cycles,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_runs_and_serializes() {
        let scale = Scale {
            warmup_cpu_cycles: 2_000,
            measure_cpu_cycles: 10_000,
            seed: 1,
            threads: 1,
        };
        let report = telemetry_study(&scale);
        assert_eq!(report.points.len(), 4);
        assert_eq!(report.points[0].name, "off");
        assert_eq!(report.points[0].series_samples, 0);
        assert_eq!(report.points[0].spans, 0);
        let series = report.point("series").unwrap();
        assert!(series.series_samples > 0);
        let spans = report.point("series_spans").unwrap();
        assert!(spans.spans > 0);
        let profile = report.profile.as_ref().expect("profiled layer ran");
        assert_eq!(
            profile.stepped_cpu_cycles + profile.jumped_cpu_cycles,
            profile.cpu_cycles
        );
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"telemetry_overhead\""));
        assert!(json.contains("\"name\": \"all\""));
        assert!(json.contains("\"profile\": {"));
        assert!(report.to_text().contains("overhead"));
    }
}
