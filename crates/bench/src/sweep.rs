//! Fleet-scale experiment engine: a parallel, resumable sweep over a
//! (workload × scheduler × replicate) grid, forked from warm checkpoints.
//!
//! The classic way to run a grid is cold: every cell pays warm-up plus
//! measurement. This orchestrator instead warms each (workload, scheduler)
//! configuration *once*, snapshots the warm system
//! ([`System::snapshot`](cloudmc_sim::System::snapshot)), and forks every
//! measured replicate from the image — each replicate restores the warm
//! state, re-seeds its stochastic inputs
//! ([`System::reseed`](cloudmc_sim::System::reseed)) and runs only the
//! measurement window. That is the SimFlex-style checkpoint-sampling
//! methodology of the source paper, at fleet scale: replicates are
//! embarrassingly parallel, and the warm-up cost is amortized `replicates`
//! ways.
//!
//! Every `repro sweep` invocation runs the same grid three ways and demands
//! bit-identical per-cell statistics from all of them — the sweep doubles as
//! the snapshot round-trip gate:
//!
//! 1. **serial**: cold start per cell, one thread (the reference);
//! 2. **parallel**: cold start per cell, worker threads;
//! 3. **forked**: warm once per configuration, replicates restored from the
//!    checkpoint image, worker threads.
//!
//! The forked pass is *resumable*: each finished cell is written to
//! `--resume-dir` as one JSON file the moment it completes, and a re-run
//! loads cached cells instead of recomputing them — a killed sweep continues
//! where it stopped. (`--max-cells N` stops the forked pass after `N` fresh
//! cells, which is how CI exercises the kill/resume path deterministically.)
//!
//! Each cell's measurement window equals the warm-up window: with
//! checkpoint forking the measurement is the only per-replicate cost, and
//! many short, re-seeded windows from one warm image is exactly how
//! checkpoint sampling trades one long run for error bars. The report
//! (`BENCH_sweep.json`) carries per-configuration means with 95% confidence
//! intervals across replicates, plus cells/minute for all three modes.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use cloudmc_memctrl::SchedulerKind;
use cloudmc_sim::{SimStats, Simulator, Snapshot, SystemConfig};
use cloudmc_workloads::Workload;

use crate::experiments::Scale;

/// The workload pool the sweep grid draws from (`--workloads N` takes the
/// first `N`): two scale-out services, the dense decision-support scan and
/// the streaming server — the paper's main behavioural classes.
pub const SWEEP_WORKLOADS: [Workload; 4] = [
    Workload::DataServing,
    Workload::TpchQ6,
    Workload::WebSearch,
    Workload::MediaStreaming,
];

/// Sweep grid and orchestration settings (the `repro sweep` flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Measured replicates per (workload, scheduler) cell group.
    pub replicates: usize,
    /// How many of [`SWEEP_WORKLOADS`] to sweep (prefix).
    pub workloads: usize,
    /// How many of [`SchedulerKind::paper_set`] to sweep (prefix).
    pub schedulers: usize,
    /// Stop the forked pass after this many freshly computed cells (CI's
    /// deterministic stand-in for killing the sweep mid-flight).
    pub max_new_cells: Option<usize>,
    /// Directory holding one JSON file per finished forked cell.
    pub resume_dir: PathBuf,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            replicates: 3,
            workloads: SWEEP_WORKLOADS.len(),
            schedulers: SchedulerKind::paper_set().len(),
            max_new_cells: None,
            resume_dir: PathBuf::from("BENCH_sweep_cells"),
        }
    }
}

/// One measured cell: a (workload, scheduler, replicate) coordinate plus the
/// statistics the report aggregates. Every field is bit-deterministic, so
/// records computed serially, in parallel and forked from a checkpoint must
/// compare equal — that comparison is the sweep's correctness gate.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Workload name (`Debug` rendering, e.g. `TpchQ6`).
    pub workload: String,
    /// Scheduler label (e.g. `FR-FCFS`).
    pub scheduler: String,
    /// Replicate index within the cell group.
    pub replicate: usize,
    /// The replicate's measurement seed.
    pub seed: u64,
    /// Committed user instructions in the measurement window.
    pub user_instructions: u64,
    /// Reads completed in the window.
    pub reads_completed: u64,
    /// Writes completed in the window.
    pub writes_completed: u64,
    /// Aggregate user IPC over the window.
    pub user_ipc: f64,
    /// Average read latency in DRAM cycles.
    pub avg_read_latency_dram: f64,
    /// Row-buffer hit rate.
    pub row_buffer_hit_rate: f64,
    /// Data-bus utilization.
    pub bandwidth_utilization: f64,
}

impl CellRecord {
    fn from_stats(cell: &Cell, stats: &SimStats) -> Self {
        Self {
            workload: cell.workload_name.clone(),
            scheduler: cell.scheduler_label.to_owned(),
            replicate: cell.replicate,
            seed: cell.seed,
            user_instructions: stats.user_instructions,
            reads_completed: stats.reads_completed,
            writes_completed: stats.writes_completed,
            user_ipc: stats.user_ipc(),
            avg_read_latency_dram: stats.avg_read_latency_dram,
            row_buffer_hit_rate: stats.row_buffer_hit_rate,
            bandwidth_utilization: stats.bandwidth_utilization,
        }
    }

    /// One-line JSON object. Floats use the shortest round-trip rendering,
    /// so identical statistics serialize to identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"scheduler\": \"{}\", \"replicate\": {}, \"seed\": {}, \
             \"user_instructions\": {}, \"reads_completed\": {}, \"writes_completed\": {}, \
             \"user_ipc\": {:?}, \"avg_read_latency_dram\": {:?}, \
             \"row_buffer_hit_rate\": {:?}, \"bandwidth_utilization\": {:?}}}",
            self.workload,
            self.scheduler,
            self.replicate,
            self.seed,
            self.user_instructions,
            self.reads_completed,
            self.writes_completed,
            self.user_ipc,
            self.avg_read_latency_dram,
            self.row_buffer_hit_rate,
            self.bandwidth_utilization,
        )
    }

    /// Parses a record previously written by [`CellRecord::to_json`].
    /// Returns `None` on any missing or malformed field — the caller treats
    /// an unreadable cache entry as a cache miss, never as data.
    #[must_use]
    pub fn parse(json: &str) -> Option<Self> {
        Some(Self {
            workload: json_str(json, "workload")?,
            scheduler: json_str(json, "scheduler")?,
            replicate: json_num(json, "replicate")?,
            seed: json_num(json, "seed")?,
            user_instructions: json_num(json, "user_instructions")?,
            reads_completed: json_num(json, "reads_completed")?,
            writes_completed: json_num(json, "writes_completed")?,
            user_ipc: json_num(json, "user_ipc")?,
            avg_read_latency_dram: json_num(json, "avg_read_latency_dram")?,
            row_buffer_hit_rate: json_num(json, "row_buffer_hit_rate")?,
            bandwidth_utilization: json_num(json, "bandwidth_utilization")?,
        })
    }
}

/// Extracts the raw text of `"name": <value>` from a flat JSON object.
fn json_raw<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\": ");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn json_str(json: &str, name: &str) -> Option<String> {
    let raw = json_raw(json, name)?;
    raw.strip_prefix('"')?.strip_suffix('"').map(str::to_owned)
}

fn json_num<T: std::str::FromStr>(json: &str, name: &str) -> Option<T> {
    json_raw(json, name)?.parse().ok()
}

/// One grid coordinate with everything needed to run it.
#[derive(Debug, Clone)]
struct Cell {
    workload: Workload,
    workload_name: String,
    scheduler: SchedulerKind,
    scheduler_label: &'static str,
    replicate: usize,
    seed: u64,
}

impl Cell {
    fn cache_file(&self) -> String {
        format!(
            "cell_{}_{}_r{}.json",
            self.workload_name, self.scheduler_label, self.replicate
        )
    }
}

/// The system configuration of one cell group: baseline hardware, the
/// group's scheduler, one worker thread (parallelism lives at the cell
/// level), and a measurement window equal to the warm-up window (see the
/// module docs for why).
fn cell_config(workload: Workload, scheduler: SchedulerKind, scale: &Scale) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.mc.scheduler = scheduler;
    cfg.warmup_cpu_cycles = scale.warmup_cpu_cycles;
    cfg.measure_cpu_cycles = scale.warmup_cpu_cycles;
    cfg.seed = scale.seed;
    cfg.threads = 1;
    cfg
}

/// The measurement seed of replicate `replicate` under base seed `base`:
/// any deterministic injection works, this one keeps neighbouring replicates
/// far apart in seed space.
fn replicate_seed(base: u64, replicate: usize) -> u64 {
    base ^ (replicate as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one cell cold: build, warm up, re-seed, measure.
fn run_cell_cold(cell: &Cell, scale: &Scale) -> Result<CellRecord, String> {
    let cfg = cell_config(cell.workload, cell.scheduler, scale);
    let mut sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
    sim.run_warmup();
    sim.system_mut().reseed(cell.seed);
    let stats = sim.run_measurement().map_err(|e| e.to_string())?;
    Ok(CellRecord::from_stats(cell, &stats))
}

/// Runs one cell forked from the group's warm image: restore, re-seed,
/// measure.
fn run_cell_forked(cell: &Cell, image: &Snapshot, scale: &Scale) -> Result<CellRecord, String> {
    let cfg = cell_config(cell.workload, cell.scheduler, scale);
    let mut sim = Simulator::from_snapshot(cfg, image).map_err(|e| e.to_string())?;
    sim.system_mut().reseed(cell.seed);
    let stats = sim.run_measurement().map_err(|e| e.to_string())?;
    Ok(CellRecord::from_stats(cell, &stats))
}

/// Runs `jobs.len()` independent jobs on up to `threads` scoped workers,
/// returning results in job order. Worker panics propagate on scope exit.
fn on_workers<T: Send, F>(threads: usize, jobs: usize, run: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    let next = Mutex::new(0usize);
    let results = Mutex::new((0..jobs).map(|_| None).collect::<Vec<Option<T>>>());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = {
                    let mut next = next.lock().expect("job counter poisoned");
                    let job = *next;
                    *next += 1;
                    job
                };
                if job >= jobs {
                    break;
                }
                let result = run(job);
                results.lock().expect("result store poisoned")[job] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

/// Per-(workload, scheduler) aggregate: mean and 95% confidence interval
/// across the replicates (normal approximation, sample standard deviation).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Workload name.
    pub workload: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Replicates aggregated.
    pub replicates: usize,
    /// Mean user IPC across replicates.
    pub ipc_mean: f64,
    /// 95% confidence half-width of the IPC mean.
    pub ipc_ci95: f64,
    /// Mean read latency (DRAM cycles) across replicates.
    pub latency_mean: f64,
    /// 95% confidence half-width of the latency mean.
    pub latency_ci95: f64,
}

fn mean_ci95(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

/// Wall-clock accounting of one pass over the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeTiming {
    /// Cells produced by this pass.
    pub cells: usize,
    /// Of those, cells loaded from the resume cache instead of computed.
    pub from_cache: usize,
    /// Wall-clock seconds for the pass.
    pub elapsed_sec: f64,
}

impl ModeTiming {
    /// Cells per minute of wall clock (the report's headline unit).
    #[must_use]
    pub fn cells_per_min(&self) -> f64 {
        if self.elapsed_sec <= 0.0 {
            return 0.0;
        }
        self.cells as f64 * 60.0 / self.elapsed_sec
    }
}

/// The finished sweep: per-cell records (identical across modes — enforced),
/// per-group aggregates, and the three modes' throughput.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Workload names in the grid.
    pub workloads: Vec<String>,
    /// Scheduler labels in the grid.
    pub schedulers: Vec<String>,
    /// Replicates per cell group.
    pub replicates: usize,
    /// Warm-up (= per-cell measurement) window in CPU cycles.
    pub window_cpu_cycles: u64,
    /// Worker threads used by the parallel and forked passes.
    pub threads: usize,
    /// The per-cell records, grid order (workload-major, then scheduler,
    /// then replicate).
    pub cells: Vec<CellRecord>,
    /// Per-(workload, scheduler) aggregates.
    pub groups: Vec<GroupSummary>,
    /// Serial cold-start pass timing.
    pub serial: ModeTiming,
    /// Parallel cold-start pass timing.
    pub parallel: ModeTiming,
    /// Checkpoint-forked pass timing.
    pub forked: ModeTiming,
}

impl SweepReport {
    /// Machine-readable JSON for `BENCH_sweep.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let quoted = |items: &[String]| {
            items
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n  \"benchmark\": \"snapshot_forked_sweep\",\n");
        let _ = writeln!(
            out,
            "  \"grid\": {{\"workloads\": [{}], \"schedulers\": [{}], \"replicates\": {}, \
             \"window_cpu_cycles\": {}}},",
            quoted(&self.workloads),
            quoted(&self.schedulers),
            self.replicates,
            self.window_cpu_cycles,
        );
        out.push_str("  \"modes_bit_identical\": true,\n");
        let _ = writeln!(
            out,
            "  \"throughput\": {{\"threads\": {}, \"cells\": {}, \
             \"serial_cells_per_min\": {:.2}, \"parallel_cells_per_min\": {:.2}, \
             \"forked_cells_per_min\": {:.2}, \"parallel_speedup\": {:.3}, \
             \"forked_speedup\": {:.3}, \"forked_cells_from_cache\": {}}},",
            self.threads,
            self.cells.len(),
            self.serial.cells_per_min(),
            self.parallel.cells_per_min(),
            self.forked.cells_per_min(),
            self.parallel_speedup(),
            self.forked_speedup(),
            self.forked.from_cache,
        );
        out.push_str("  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"workload\": \"{}\", \"scheduler\": \"{}\", \"replicates\": {}, \
                 \"ipc_mean\": {:.4}, \"ipc_ci95\": {:.4}, \
                 \"latency_mean\": {:.2}, \"latency_ci95\": {:.2}}}{}",
                g.workload,
                g.scheduler,
                g.replicates,
                g.ipc_mean,
                g.ipc_ci95,
                g.latency_mean,
                g.latency_ci95,
                if i + 1 == self.groups.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                c.to_json(),
                if i + 1 == self.cells.len() { "" } else { "," }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "snapshot-forked sweep: {} workloads x {} schedulers x {} replicates \
             ({} cells, {}-cycle windows)\n\
             workload         scheduler          ipc (mean +/- ci95)    read latency (dram)\n",
            self.workloads.len(),
            self.schedulers.len(),
            self.replicates,
            self.cells.len(),
            self.window_cpu_cycles,
        );
        for g in &self.groups {
            let _ = writeln!(
                out,
                "{:<16} {:<16} {:>8.3} +/- {:<8.3} {:>10.1} +/- {:.1}",
                g.workload, g.scheduler, g.ipc_mean, g.ipc_ci95, g.latency_mean, g.latency_ci95
            );
        }
        let _ = writeln!(
            out,
            "cells/minute: serial {:.2}, parallel {:.2} ({:.2}x), \
             snapshot-forked {:.2} ({:.2}x, {} of {} cells from cache; {} threads)",
            self.serial.cells_per_min(),
            self.parallel.cells_per_min(),
            self.parallel_speedup(),
            self.forked.cells_per_min(),
            self.forked_speedup(),
            self.forked.from_cache,
            self.cells.len(),
            self.threads,
        );
        out
    }

    /// Parallel cold-start throughput relative to serial.
    #[must_use]
    pub fn parallel_speedup(&self) -> f64 {
        safe_ratio(self.parallel.cells_per_min(), self.serial.cells_per_min())
    }

    /// Checkpoint-forked throughput relative to serial.
    #[must_use]
    pub fn forked_speedup(&self) -> f64 {
        safe_ratio(self.forked.cells_per_min(), self.serial.cells_per_min())
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// How a sweep invocation ended.
#[derive(Debug)]
pub enum SweepOutcome {
    /// All passes ran; the report is ready to write.
    Complete(Box<SweepReport>),
    /// `--max-cells` stopped the forked pass early; re-running the same
    /// sweep resumes from the cells already in the resume directory.
    Stopped {
        /// Freshly computed cells before stopping.
        new_cells: usize,
        /// Cells loaded from the resume directory.
        cached_cells: usize,
        /// Cells still missing.
        remaining: usize,
    },
}

/// Builds the grid in report order (workload-major, scheduler, replicate).
fn grid(opts: &SweepOptions, scale: &Scale) -> Vec<Cell> {
    let workloads = &SWEEP_WORKLOADS[..opts.workloads.min(SWEEP_WORKLOADS.len())];
    let paper = SchedulerKind::paper_set();
    let schedulers = &paper[..opts.schedulers.min(paper.len())];
    let mut cells = Vec::new();
    for &workload in workloads {
        for &scheduler in schedulers {
            for replicate in 0..opts.replicates {
                cells.push(Cell {
                    workload,
                    workload_name: format!("{workload:?}"),
                    scheduler,
                    scheduler_label: scheduler.label(),
                    replicate,
                    seed: replicate_seed(scale.seed, replicate),
                });
            }
        }
    }
    cells
}

/// Loads a cell's cached record if one exists and matches the cell's
/// coordinates and seed exactly; anything else is a miss.
fn load_cached(dir: &Path, cell: &Cell) -> Option<CellRecord> {
    let text = std::fs::read_to_string(dir.join(cell.cache_file())).ok()?;
    let record = CellRecord::parse(&text)?;
    (record.workload == cell.workload_name
        && record.scheduler == cell.scheduler_label
        && record.replicate == cell.replicate
        && record.seed == cell.seed)
        .then_some(record)
}

/// The forked pass: warm + snapshot each (workload, scheduler) group that
/// still has missing cells, then measure all missing cells from the images
/// on the worker pool, writing each to the resume directory as it finishes.
/// Returns `(records_in_grid_order, timing)` or, when `max_new_cells` capped
/// the pass, `Err` describing the early stop.
#[allow(clippy::type_complexity)]
fn forked_pass(
    cells: &[Cell],
    opts: &SweepOptions,
    scale: &Scale,
) -> Result<Result<(Vec<CellRecord>, ModeTiming), SweepOutcome>, String> {
    let started = Instant::now();
    std::fs::create_dir_all(&opts.resume_dir)
        .map_err(|e| format!("creating {}: {e}", opts.resume_dir.display()))?;
    let mut records: Vec<Option<CellRecord>> = Vec::with_capacity(cells.len());
    let mut missing: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let cached = load_cached(&opts.resume_dir, cell);
        if cached.is_none() {
            missing.push(i);
        }
        records.push(cached);
    }
    let cached_cells = cells.len() - missing.len();
    if let Some(cap) = opts.max_new_cells {
        missing.truncate(cap);
    }

    // Warm and snapshot each group that still has work, in parallel.
    let mut group_keys: Vec<(Workload, SchedulerKind)> = Vec::new();
    for &i in &missing {
        let key = (cells[i].workload, cells[i].scheduler);
        if !group_keys.contains(&key) {
            group_keys.push(key);
        }
    }
    let images: Vec<Result<Snapshot, String>> =
        on_workers(scale.threads, group_keys.len(), |job| {
            let (workload, scheduler) = group_keys[job];
            let cfg = cell_config(workload, scheduler, scale);
            let mut sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
            sim.run_warmup();
            sim.system().snapshot().map_err(|e| e.to_string())
        });
    let mut group_images = Vec::with_capacity(images.len());
    for image in images {
        group_images.push(image?);
    }
    let image_of = |cell: &Cell| {
        let key = (cell.workload, cell.scheduler);
        let at = group_keys.iter().position(|&k| k == key).expect("warmed");
        &group_images[at]
    };

    // Measure the missing cells on the pool; persist each as it finishes.
    let computed: Vec<Result<CellRecord, String>> =
        on_workers(scale.threads, missing.len(), |job| {
            let cell = &cells[missing[job]];
            let record = run_cell_forked(cell, image_of(cell), scale)?;
            let path = opts.resume_dir.join(cell.cache_file());
            std::fs::write(&path, record.to_json())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            Ok(record)
        });
    let new_cells = computed.len();
    for (slot, record) in missing.iter().zip(computed) {
        records[*slot] = Some(record?);
    }

    let timing = ModeTiming {
        cells: cells.len(),
        from_cache: cached_cells,
        elapsed_sec: started.elapsed().as_secs_f64(),
    };
    if records.iter().any(Option::is_none) {
        return Ok(Err(SweepOutcome::Stopped {
            new_cells,
            cached_cells,
            remaining: records.iter().filter(|r| r.is_none()).count(),
        }));
    }
    Ok(Ok((
        records.into_iter().map(|r| r.expect("checked")).collect(),
        timing,
    )))
}

/// Runs the full sweep: forked (resumable) first, then the serial and
/// parallel cold-start reference passes, then the bit-identity gate.
///
/// # Errors
///
/// Returns a description of the first configuration, I/O or simulation
/// error, or of a bit-identity violation between the three modes (which
/// would mean the snapshot layer is broken — the sweep refuses to report).
pub fn run_sweep(opts: &SweepOptions, scale: &Scale) -> Result<SweepOutcome, String> {
    let cells = grid(opts, scale);
    if cells.is_empty() {
        return Err("empty sweep grid".to_owned());
    }

    // Pass 1 (resumable, capped): checkpoint-forked.
    let (forked_records, forked_timing) = match forked_pass(&cells, opts, scale)? {
        Ok(done) => done,
        Err(stopped) => return Ok(stopped),
    };

    // Pass 2: serial cold-start reference.
    let started = Instant::now();
    let serial_records = {
        let mut out = Vec::with_capacity(cells.len());
        for cell in &cells {
            out.push(run_cell_cold(cell, scale)?);
        }
        out
    };
    let serial_timing = ModeTiming {
        cells: cells.len(),
        from_cache: 0,
        elapsed_sec: started.elapsed().as_secs_f64(),
    };

    // Pass 3: parallel cold-start.
    let started = Instant::now();
    let parallel_results: Vec<Result<CellRecord, String>> =
        on_workers(scale.threads, cells.len(), |job| {
            run_cell_cold(&cells[job], scale)
        });
    let mut parallel_records = Vec::with_capacity(cells.len());
    for record in parallel_results {
        parallel_records.push(record?);
    }
    let parallel_timing = ModeTiming {
        cells: cells.len(),
        from_cache: 0,
        elapsed_sec: started.elapsed().as_secs_f64(),
    };

    // The snapshot round-trip gate: all three modes must agree bit-for-bit.
    for (serial, (parallel, forked)) in serial_records
        .iter()
        .zip(parallel_records.iter().zip(forked_records.iter()))
    {
        if serial != parallel || serial != forked {
            return Err(format!(
                "modes diverged at cell ({}, {}, replicate {}): the parallel and \
                 checkpoint-forked runs must be bit-identical to the serial reference",
                serial.workload, serial.scheduler, serial.replicate
            ));
        }
    }

    // Aggregate per group, in grid order.
    let mut groups = Vec::new();
    for chunk in serial_records.chunks(opts.replicates) {
        let ipcs: Vec<f64> = chunk.iter().map(|c| c.user_ipc).collect();
        let lats: Vec<f64> = chunk.iter().map(|c| c.avg_read_latency_dram).collect();
        let (ipc_mean, ipc_ci95) = mean_ci95(&ipcs);
        let (latency_mean, latency_ci95) = mean_ci95(&lats);
        groups.push(GroupSummary {
            workload: chunk[0].workload.clone(),
            scheduler: chunk[0].scheduler.clone(),
            replicates: chunk.len(),
            ipc_mean,
            ipc_ci95,
            latency_mean,
            latency_ci95,
        });
    }

    let workloads = SWEEP_WORKLOADS[..opts.workloads.min(SWEEP_WORKLOADS.len())]
        .iter()
        .map(|w| format!("{w:?}"))
        .collect();
    let paper = SchedulerKind::paper_set();
    let schedulers = paper[..opts.schedulers.min(paper.len())]
        .iter()
        .map(|s| s.label().to_owned())
        .collect();
    Ok(SweepOutcome::Complete(Box::new(SweepReport {
        workloads,
        schedulers,
        replicates: opts.replicates,
        window_cpu_cycles: scale.warmup_cpu_cycles,
        threads: scale.threads,
        cells: serial_records,
        groups,
        serial: serial_timing,
        parallel: parallel_timing,
        forked: forked_timing,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut scale = Scale::quick();
        scale.warmup_cpu_cycles = 4_000;
        scale.threads = 2;
        scale
    }

    fn tiny_opts(dir: &str) -> SweepOptions {
        SweepOptions {
            replicates: 2,
            workloads: 1,
            schedulers: 2,
            max_new_cells: None,
            resume_dir: std::env::temp_dir().join(dir),
        }
    }

    #[test]
    fn cell_records_round_trip_through_json() {
        let record = CellRecord {
            workload: "TpchQ6".to_owned(),
            scheduler: "FR-FCFS".to_owned(),
            replicate: 2,
            seed: 0xDEAD_BEEF,
            user_instructions: 123_456,
            reads_completed: 789,
            writes_completed: 12,
            user_ipc: 7.123_456_789_012,
            avg_read_latency_dram: 61.25,
            row_buffer_hit_rate: 0.812_345,
            bandwidth_utilization: 0.25,
        };
        let parsed = CellRecord::parse(&record.to_json()).expect("round trip");
        assert_eq!(parsed, record);
        assert_eq!(CellRecord::parse("{\"workload\": \"x\"}"), None);
        assert_eq!(CellRecord::parse("not json"), None);
    }

    #[test]
    fn replicate_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..16).map(|r| replicate_seed(1, r)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn mean_ci_matches_hand_computation() {
        let (mean, ci) = mean_ci95(&[1.0, 2.0, 3.0]);
        assert!((mean - 2.0).abs() < 1e-12);
        // sd = 1, se = 1/sqrt(3), ci = 1.96 * se
        assert!((ci - 1.96 / 3.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean_ci95(&[5.0]), (5.0, 0.0));
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
    }

    #[test]
    fn sweep_completes_resumes_and_gates_identity() {
        let opts = tiny_opts("cloudmc_sweep_test_complete");
        let _ = std::fs::remove_dir_all(&opts.resume_dir);
        let scale = tiny_scale();

        // A capped first run stops early with cells persisted.
        let mut capped = opts.clone();
        capped.max_new_cells = Some(1);
        match run_sweep(&capped, &scale).expect("capped sweep") {
            SweepOutcome::Stopped {
                new_cells,
                remaining,
                ..
            } => {
                assert_eq!(new_cells, 1);
                assert_eq!(remaining, 3);
            }
            SweepOutcome::Complete(_) => panic!("capped sweep must stop early"),
        }

        // The uncapped re-run resumes from the cache and completes.
        let report = match run_sweep(&opts, &scale).expect("resumed sweep") {
            SweepOutcome::Complete(report) => report,
            SweepOutcome::Stopped { .. } => panic!("uncapped sweep must complete"),
        };
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.forked.from_cache, 1, "one cell came from the cache");
        assert_eq!(report.groups.len(), 2);
        assert!(report.groups.iter().all(|g| g.ipc_mean > 0.0));
        let json = report.to_json();
        assert!(json.contains("\"modes_bit_identical\": true"));
        assert!(json.contains("\"forked_cells_from_cache\": 1"));
        assert!(report.to_text().contains("cells/minute"));

        // A third run finds every cell cached.
        let report = match run_sweep(&opts, &scale).expect("cached sweep") {
            SweepOutcome::Complete(report) => report,
            SweepOutcome::Stopped { .. } => panic!("cached sweep must complete"),
        };
        assert_eq!(report.forked.from_cache, 4);
        let _ = std::fs::remove_dir_all(&opts.resume_dir);
    }

    #[test]
    fn stale_cache_entries_are_recomputed_not_trusted() {
        let opts = tiny_opts("cloudmc_sweep_test_stale");
        let _ = std::fs::remove_dir_all(&opts.resume_dir);
        std::fs::create_dir_all(&opts.resume_dir).unwrap();
        let scale = tiny_scale();
        // Plant a record with the right name but the wrong seed: a leftover
        // from a sweep under a different base seed must be a cache miss.
        let cell = &grid(&opts, &scale)[0];
        let mut wrong = scale;
        wrong.seed = 999;
        let stale = Cell {
            seed: replicate_seed(wrong.seed, 0),
            ..cell.clone()
        };
        let record = run_cell_cold(&stale, &wrong).expect("stale cell");
        std::fs::write(
            opts.resume_dir.join(cell.cache_file()),
            CellRecord::to_json(&record),
        )
        .unwrap();
        assert!(
            load_cached(&opts.resume_dir, cell).is_none(),
            "a stale record must not satisfy the cache"
        );
        let _ = std::fs::remove_dir_all(&opts.resume_dir);
    }
}
