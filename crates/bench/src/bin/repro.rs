//! `repro`: regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   config        Tables 2 and 3 (configuration dump)
//!   fig1 .. fig7  memory scheduling study (Section 4.1)
//!   fig8          single-access row activations (Section 4.2.1)
//!   fig9 .. fig11 page-management study (Section 4.2)
//!   fig12..fig14  multi-channel study (Section 4.3)
//!   table4        best mapping scheme per workload
//!   sched         figs 1-7 in one sweep
//!   pages         figs 9-11 in one sweep
//!   channels      figs 12-14 + table 4 in one sweep
//!   fastforward   simulator throughput under each kernel drive mode
//!                 (naive / horizon / event-driven / event-driven with
//!                 worker threads); writes BENCH_fastforward.json and
//!                 fails if the event kernel slows any dense stream below
//!                 the naive loop
//!   energy        DRAM energy sweep: 5 schedulers x 4 page policies x
//!                 4 power policies on idle-heavy + dense workloads;
//!                 writes BENCH_energy.json
//!   qos           multi-tenant QoS sweep: 3 tenant mixes x 5 schedulers x
//!                 3 QoS policies plus alone-run baselines; writes
//!                 BENCH_qos.json
//!   reliability   fault injection / ECC / patrol scrub sweep: 2 fault
//!                 rates x 2 scrub intervals x 2 power policies on the
//!                 flagship tenant mix, plus fault-free baselines; writes
//!                 BENCH_reliability.json
//!   trace         trace capture & replay round trip: record/replay timing
//!                 with bit-identical stats asserted, plus the golden
//!                 mini-trace check; writes BENCH_trace.json
//!                 (--golden-regen rewrites tests/data/golden_mix.trace)
//!   all           everything above
//!
//! options:
//!   --quick | --full      run length preset (default: standard)
//!   --measure <cycles>    override measurement CPU cycles
//!   --warmup <cycles>     override warm-up CPU cycles
//!   --seed <n>            workload seed (default 1)
//!   --threads <n>         worker threads
//!   --csv <dir>           also write each table as CSV into <dir>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cloudmc_bench::{
    baseline_study, channel_study, config_report, energy_study, fastforward_report, figure1,
    figure10, figure11, figure12, figure13, figure14, figure2, figure3, figure4, figure5, figure6,
    figure7, figure8, figure9, page_policy_study, qos_study, regenerate_golden_trace,
    reliability_study, scheduler_study, trace_study, Scale, Table,
};

struct Options {
    experiment: String,
    scale: Scale,
    csv_dir: Option<PathBuf>,
    golden_regen: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    // `repro --help` (no experiment) must print usage, not run "--help".
    let experiment = match args.next() {
        Some(first) if first == "--help" || first == "-h" => {
            println!("{HELP}");
            std::process::exit(0);
        }
        Some(first) => first,
        None => "all".to_owned(),
    };
    let mut scale = Scale::standard();
    let mut csv_dir = None;
    let mut golden_regen = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--full" => scale = Scale::full(),
            "--golden-regen" => golden_regen = true,
            "--measure" => {
                scale.measure_cpu_cycles = args
                    .next()
                    .ok_or("--measure needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --measure value: {e}"))?;
            }
            "--warmup" => {
                scale.warmup_cpu_cycles = args
                    .next()
                    .ok_or("--warmup needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --warmup value: {e}"))?;
            }
            "--seed" => {
                scale.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed value: {e}"))?;
            }
            "--threads" => {
                scale.threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().ok_or("--csv needs a directory")?));
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    Ok(Options {
        experiment,
        scale,
        csv_dir,
        golden_regen,
    })
}

const HELP: &str = "usage: repro \
<config|fig1..fig14|table4|sched|pages|channels|fastforward|energy|qos|reliability|trace|all> \
[--quick|--full] [--measure N] [--warmup N] [--seed N] [--threads N] [--csv DIR] \
[--golden-regen]";

fn emit(table: &Table, csv_dir: &Option<PathBuf>) {
    println!("{}", table.to_text());
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
        let name: String = table
            .title
            .chars()
            .take_while(|c| *c != ':')
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let scale = opts.scale;
    eprintln!(
        "# running `{}` (warmup {} + measure {} CPU cycles per point, seed {}, {} threads)",
        opts.experiment,
        scale.warmup_cpu_cycles,
        scale.measure_cpu_cycles,
        scale.seed,
        scale.threads
    );
    let exp = opts.experiment.as_str();
    let wants = |names: &[&str]| names.contains(&exp);

    if wants(&["config", "all"]) {
        println!("{}", config_report());
    }
    if wants(&[
        "sched", "all", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    ]) {
        let study = scheduler_study(&scale);
        let figures = [
            ("fig1", figure1(&study)),
            ("fig2", figure2(&study)),
            ("fig3", figure3(&study)),
            ("fig4", figure4(&study)),
            ("fig5", figure5(&study)),
            ("fig6", figure6(&study)),
            ("fig7", figure7(&study)),
        ];
        for (name, table) in figures {
            if wants(&[name, "sched", "all"]) {
                emit(&table, &opts.csv_dir);
            }
        }
    }
    if wants(&["fig8", "all"]) {
        let baseline = baseline_study(&scale);
        emit(&figure8(&baseline), &opts.csv_dir);
    }
    if wants(&["pages", "all", "fig9", "fig10", "fig11"]) {
        let study = page_policy_study(&scale);
        let figures = [
            ("fig9", figure9(&study)),
            ("fig10", figure10(&study)),
            ("fig11", figure11(&study)),
        ];
        for (name, table) in figures {
            if wants(&[name, "pages", "all"]) {
                emit(&table, &opts.csv_dir);
            }
        }
    }
    if wants(&["channels", "all", "fig12", "fig13", "fig14", "table4"]) {
        let study = channel_study(&scale);
        let figures = [
            ("fig12", figure12(&study)),
            ("fig13", figure13(&study)),
            ("fig14", figure14(&study)),
        ];
        for (name, table) in figures {
            if wants(&[name, "channels", "all"]) {
                emit(&table, &opts.csv_dir);
            }
        }
        if wants(&["table4", "channels", "all"]) {
            println!("{}", study.table4().to_text());
        }
    }
    if wants(&["fastforward", "all"]) {
        let report = fastforward_report(&scale);
        println!("{}", report.to_text());
        let path = "BENCH_fastforward.json";
        std::fs::write(path, report.to_json()).expect("write BENCH_fastforward.json");
        eprintln!("wrote {path}");
        // Regression gate (run as a CI smoke step): on dense streams the
        // event kernel has no idle cycles to skip, so any speedup below 1.0
        // means its bookkeeping is taxing the busy path.
        for p in report.points.iter().filter(|p| p.name != "idle_heavy") {
            if p.speedup() < 1.0 {
                eprintln!(
                    "error: dense stream `{}` regressed: event kernel ran at {:.2}x the naive loop",
                    p.name,
                    p.speedup()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if wants(&["energy", "all"]) {
        let report = energy_study(&scale);
        println!("{}", report.to_text());
        let path = "BENCH_energy.json";
        std::fs::write(path, report.to_json()).expect("write BENCH_energy.json");
        eprintln!("wrote {path}");
    }
    if wants(&["qos", "all"]) {
        let report = qos_study(&scale);
        println!("{}", report.to_text());
        let path = "BENCH_qos.json";
        std::fs::write(path, report.to_json()).expect("write BENCH_qos.json");
        eprintln!("wrote {path}");
    }
    if wants(&["reliability", "all"]) {
        let report = reliability_study(&scale);
        println!("{}", report.to_text());
        let path = "BENCH_reliability.json";
        std::fs::write(path, report.to_json()).expect("write BENCH_reliability.json");
        eprintln!("wrote {path}");
        // Regression gate (run as a CI smoke step): the fault ledger must
        // balance on every point, and scrubbing must have produced real
        // traffic wherever it was enabled.
        for p in &report.points {
            let ledger_ok = p.stats.faults_injected
                == p.stats.faults_corrected + p.stats.faults_uncorrectable + p.stats.faults_latent;
            if !ledger_ok {
                eprintln!("error: fault ledger out of balance at `{}`", p.label());
                return ExitCode::FAILURE;
            }
            if p.scrub_interval > 0 && p.stats.scrub_reads_completed == 0 {
                eprintln!("error: scrubbing enabled but idle at `{}`", p.label());
                return ExitCode::FAILURE;
            }
        }
    }
    if wants(&["trace", "all"]) {
        if opts.golden_regen {
            match regenerate_golden_trace() {
                Ok(path) => eprintln!("regenerated {}", path.display()),
                Err(e) => {
                    eprintln!("error: golden trace regeneration failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let report = trace_study(&scale);
        println!("{}", report.to_text());
        let path = "BENCH_trace.json";
        std::fs::write(path, report.to_json()).expect("write BENCH_trace.json");
        eprintln!("wrote {path}");
    }
    let known = [
        "config",
        "all",
        "sched",
        "pages",
        "channels",
        "table4",
        "fastforward",
        "energy",
        "qos",
        "reliability",
        "trace",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
    ];
    if !known.contains(&exp) {
        eprintln!("error: unknown experiment `{exp}`");
        eprintln!("{HELP}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
