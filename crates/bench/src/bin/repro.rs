//! `repro`: regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   config        Tables 2 and 3 (configuration dump)
//!   fig1 .. fig7  memory scheduling study (Section 4.1)
//!   fig8          single-access row activations (Section 4.2.1)
//!   fig9 .. fig11 page-management study (Section 4.2)
//!   fig12..fig14  multi-channel study (Section 4.3)
//!   table4        best mapping scheme per workload
//!   sched         figs 1-7 in one sweep
//!   pages         figs 9-11 in one sweep
//!   channels      figs 12-14 + table 4 in one sweep
//!   fastforward   simulator throughput under each kernel drive mode
//!                 (naive / horizon / event-driven / event-driven with
//!                 worker threads); writes BENCH_fastforward.json and
//!                 fails if the event kernel slows any dense stream below
//!                 the naive loop
//!   energy        DRAM energy sweep: 5 schedulers x 4 page policies x
//!                 4 power policies on idle-heavy + dense workloads;
//!                 writes BENCH_energy.json
//!   qos           multi-tenant QoS sweep: 3 tenant mixes x 5 schedulers x
//!                 3 QoS policies plus alone-run baselines; writes
//!                 BENCH_qos.json
//!   reliability   fault injection / ECC / patrol scrub sweep: 2 fault
//!                 rates x 2 scrub intervals x 2 power policies on the
//!                 flagship tenant mix, plus fault-free baselines; writes
//!                 BENCH_reliability.json
//!   trace         trace capture & replay round trip: record/replay timing
//!                 with bit-identical stats asserted, plus the golden
//!                 mini-trace check; writes BENCH_trace.json
//!                 (--golden-regen rewrites tests/data/golden_mix.trace)
//!   telemetry     observability overhead study: wall-clock cost of the
//!                 interval time series, span tracing, and kernel
//!                 self-profiler layers vs telemetry off on the dense
//!                 TPC-H Q6 stream; writes BENCH_telemetry.json and, at
//!                 standard scale and above, fails if the disabled hooks
//!                 cost more than 2%
//!   sweep         snapshot-forked experiment sweep: warm each
//!                 (workload, scheduler) once, checkpoint it, fork the
//!                 replicates from the image across worker threads, and
//!                 demand bit-identity with serial + parallel cold runs;
//!                 resumable via --resume-dir; writes BENCH_sweep.json
//!   lint          run the simlint static analyzer over the workspace
//!                 (same checks as `simlint --deny all`); fails on any
//!                 violation
//!   all           everything above except sweep and lint
//!
//! options:
//!   --quick | --full      run length preset (default: standard)
//!   --measure <cycles>    override measurement CPU cycles
//!   --warmup <cycles>     override warm-up CPU cycles
//!   --seed <n>            workload seed (default 1)
//!   --threads <n>         worker threads
//!   --csv <dir>           also write each table as CSV into <dir>
//!   --git-describe <s>    version string for the report meta block
//!                         (or set REPRO_GIT_DESCRIBE)
//!   --replicates <n>      sweep: measured replicates per cell (default 3)
//!   --workloads <n>       sweep: workloads in the grid (default 4)
//!   --schedulers <n>      sweep: schedulers in the grid (default 5)
//!   --max-cells <n>       sweep: stop after n fresh cells (resume later)
//!   --resume-dir <dir>    sweep: cell cache directory
//!                         (default BENCH_sweep_cells)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cloudmc_bench::{
    baseline_study, channel_study, config_report, energy_study, fastforward_report, figure1,
    figure10, figure11, figure12, figure13, figure14, figure2, figure3, figure4, figure5, figure6,
    figure7, figure8, figure9, page_policy_study, parse, qos_study, regenerate_golden_trace,
    reliability_study, run_sweep, scheduler_study, telemetry_study, trace_study, with_meta,
    Options, Parsed, RunMeta, Scale, SweepOutcome, Table, HELP,
};

fn emit(table: &Table, csv_dir: &Option<PathBuf>) {
    println!("{}", table.to_text());
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
        let name: String = table
            .title
            .chars()
            .take_while(|c| *c != ':')
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}

/// Writes a report's JSON with the provenance `meta` block spliced in.
///
/// Returns `false` (after printing the contract diagnostic) when the path is
/// unwritable, so the caller can exit with a failure code instead of
/// panicking; the computed report was already printed to stdout either way.
#[must_use]
fn write_report(path: &str, json: &str, meta: &RunMeta) -> bool {
    match std::fs::write(path, with_meta(json, meta)) {
        Ok(()) => {
            eprintln!("wrote {path}");
            true
        }
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args().skip(1)) {
        Ok(Parsed::Run(opts)) => opts,
        Ok(Parsed::Help) => {
            println!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let Options {
        experiment,
        scale,
        scale_label,
        csv_dir,
        golden_regen,
        git_describe,
        sweep,
    } = *opts;
    let meta = RunMeta::collect(&scale_label, git_describe.as_deref());
    let exp = experiment.as_str();
    let wants = |names: &[&str]| names.contains(&exp);
    if !wants(&["lint"]) {
        eprintln!(
            "# running `{}` (warmup {} + measure {} CPU cycles per point, seed {}, {} threads)",
            experiment,
            scale.warmup_cpu_cycles,
            scale.measure_cpu_cycles,
            scale.seed,
            scale.threads
        );
    }

    if wants(&["lint"]) {
        let root = std::env::current_dir()
            .ok()
            .and_then(|d| cloudmc_lint::find_workspace_root(&d));
        let Some(root) = root else {
            eprintln!("error: lint: no [workspace] Cargo.toml above the current directory");
            return ExitCode::FAILURE;
        };
        match cloudmc_lint::analyze(&cloudmc_lint::Config::all_rules(root)) {
            Ok(report) => {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                println!(
                    "simlint: {} file(s) scanned, {} violation(s), {} suppressed",
                    report.files_scanned,
                    report.diagnostics.len(),
                    report.suppressed
                );
                if !report.diagnostics.is_empty() {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: lint failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if wants(&["config", "all"]) {
        println!("{}", config_report());
    }
    if wants(&[
        "sched", "all", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    ]) {
        let study = scheduler_study(&scale);
        let figures = [
            ("fig1", figure1(&study)),
            ("fig2", figure2(&study)),
            ("fig3", figure3(&study)),
            ("fig4", figure4(&study)),
            ("fig5", figure5(&study)),
            ("fig6", figure6(&study)),
            ("fig7", figure7(&study)),
        ];
        for (name, table) in figures {
            if wants(&[name, "sched", "all"]) {
                emit(&table, &csv_dir);
            }
        }
    }
    if wants(&["fig8", "all"]) {
        let baseline = baseline_study(&scale);
        emit(&figure8(&baseline), &csv_dir);
    }
    if wants(&["pages", "all", "fig9", "fig10", "fig11"]) {
        let study = page_policy_study(&scale);
        let figures = [
            ("fig9", figure9(&study)),
            ("fig10", figure10(&study)),
            ("fig11", figure11(&study)),
        ];
        for (name, table) in figures {
            if wants(&[name, "pages", "all"]) {
                emit(&table, &csv_dir);
            }
        }
    }
    if wants(&["channels", "all", "fig12", "fig13", "fig14", "table4"]) {
        let study = channel_study(&scale);
        let figures = [
            ("fig12", figure12(&study)),
            ("fig13", figure13(&study)),
            ("fig14", figure14(&study)),
        ];
        for (name, table) in figures {
            if wants(&[name, "channels", "all"]) {
                emit(&table, &csv_dir);
            }
        }
        if wants(&["table4", "channels", "all"]) {
            println!("{}", study.table4().to_text());
        }
    }
    if wants(&["fastforward", "all"]) {
        let report = fastforward_report(&scale);
        println!("{}", report.to_text());
        if !write_report("BENCH_fastforward.json", &report.to_json(), &meta) {
            return ExitCode::FAILURE;
        }
        // Regression gate (run as a CI smoke step): on dense streams the
        // event kernel has no idle cycles to skip, so any speedup below 1.0
        // means its bookkeeping is taxing the busy path.
        for p in report.points.iter().filter(|p| p.name != "idle_heavy") {
            if p.speedup() < 1.0 {
                eprintln!(
                    "error: dense stream `{}` regressed: event kernel ran at {:.2}x the naive loop",
                    p.name,
                    p.speedup()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if wants(&["energy", "all"]) {
        let report = energy_study(&scale);
        println!("{}", report.to_text());
        if !write_report("BENCH_energy.json", &report.to_json(), &meta) {
            return ExitCode::FAILURE;
        }
    }
    if wants(&["qos", "all"]) {
        let report = qos_study(&scale);
        println!("{}", report.to_text());
        if !write_report("BENCH_qos.json", &report.to_json(), &meta) {
            return ExitCode::FAILURE;
        }
    }
    if wants(&["reliability", "all"]) {
        let report = reliability_study(&scale);
        println!("{}", report.to_text());
        if !write_report("BENCH_reliability.json", &report.to_json(), &meta) {
            return ExitCode::FAILURE;
        }
        // Regression gate (run as a CI smoke step): the fault ledger must
        // balance on every point, and scrubbing must have produced real
        // traffic wherever it was enabled.
        for p in &report.points {
            let ledger_ok = p.stats.faults_injected
                == p.stats.faults_corrected + p.stats.faults_uncorrectable + p.stats.faults_latent;
            if !ledger_ok {
                eprintln!("error: fault ledger out of balance at `{}`", p.label());
                return ExitCode::FAILURE;
            }
            if p.scrub_interval > 0 && p.stats.scrub_reads_completed == 0 {
                eprintln!("error: scrubbing enabled but idle at `{}`", p.label());
                return ExitCode::FAILURE;
            }
        }
    }
    if wants(&["trace", "all"]) {
        if golden_regen {
            match regenerate_golden_trace() {
                Ok(path) => eprintln!("regenerated {}", path.display()),
                Err(e) => {
                    eprintln!("error: golden trace regeneration failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let report = trace_study(&scale);
        println!("{}", report.to_text());
        if !write_report("BENCH_trace.json", &report.to_json(), &meta) {
            return ExitCode::FAILURE;
        }
    }
    if wants(&["telemetry", "all"]) {
        let report = telemetry_study(&scale);
        println!("{}", report.to_text());
        if !write_report("BENCH_telemetry.json", &report.to_json(), &meta) {
            return ExitCode::FAILURE;
        }
        // Regression gate (run as a CI smoke step): with everything off the
        // telemetry hooks must be invisible. Only enforced at standard scale
        // and above — quick runs are too short to measure 2% reliably.
        if scale.measure_cpu_cycles >= Scale::standard().measure_cpu_cycles {
            if let Some(off) = report.point("off") {
                if off.overhead_vs_off > 0.02 {
                    eprintln!(
                        "error: telemetry-off overhead {:.2}% exceeds the 2% budget",
                        off.overhead_vs_off * 100.0
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if wants(&["sweep"]) {
        match run_sweep(&sweep, &scale) {
            Ok(SweepOutcome::Complete(report)) => {
                println!("{}", report.to_text());
                if !write_report("BENCH_sweep.json", &report.to_json(), &meta) {
                    return ExitCode::FAILURE;
                }
            }
            Ok(SweepOutcome::Stopped {
                new_cells,
                cached_cells,
                remaining,
            }) => {
                eprintln!(
                    "sweep stopped after {new_cells} new cells ({cached_cells} cached, \
                     {remaining} remaining): rerun the same command to resume from {}",
                    sweep.resume_dir.display()
                );
            }
            Err(e) => {
                eprintln!("error: sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
