//! Diagnostic: run one workload under each scheduler and dump the full
//! measured statistics side by side.

use cloudmc_bench::{baseline_config, paper_schedulers, Scale};
use cloudmc_sim::{run_system, System};
use cloudmc_workloads::Workload;

/// Prints cache/stall details for the FR-FCFS baseline of `workload`.
fn cache_details(cfg: cloudmc_sim::SystemConfig) {
    let cycles_to_run = cfg.warmup_cpu_cycles + cfg.measure_cpu_cycles;
    let cores = cfg.workload.cores;
    let mut system = System::new(cfg).unwrap();
    system.run_cycles(cycles_to_run);
    let (mut l1i_h, mut l1i_m, mut l1d_h, mut l1d_m, mut stall, mut cycles) = (0, 0, 0, 0, 0, 0);
    for c in 0..cores {
        l1i_h += system.l1i_stats(c).hits;
        l1i_m += system.l1i_stats(c).misses;
        l1d_h += system.l1d_stats(c).hits;
        l1d_m += system.l1d_stats(c).misses;
        stall += system.core_stats(c).stall_cycles;
        cycles += system.core_stats(c).cycles;
    }
    let l2 = system.l2_stats();
    let [code, shared, hot, private] = system.reads_by_region();
    println!("reads by region: code {code} shared {shared} hot {hot} private {private}");
    println!(
        "cache detail: L1I miss% {:.1} ({} misses)  L1D miss% {:.1} ({} misses)  L2 miss% {:.1} ({}/{})  core stall% {:.1}",
        100.0 * l1i_m as f64 / (l1i_h + l1i_m).max(1) as f64,
        l1i_m,
        100.0 * l1d_m as f64 / (l1d_h + l1d_m).max(1) as f64,
        l1d_m,
        100.0 * l2.miss_ratio(),
        l2.misses,
        l2.accesses(),
        100.0 * stall as f64 / cycles.max(1) as f64,
    );
}

fn main() {
    let workload: Workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "DS".to_owned())
        .parse()
        .expect("workload acronym");
    let measure: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let scale = Scale {
        warmup_cpu_cycles: measure / 2,
        measure_cpu_cycles: measure,
        seed: 1,
        threads: 1,
    };
    println!(
        "{:12} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheduler", "IPC", "lat(dram)", "hit%", "rdQ", "wrQ", "BW%", "reads", "writes"
    );
    let tweak = std::env::args().nth(3).unwrap_or_default();
    {
        let mut cfg = baseline_config(workload, &scale);
        if tweak.contains("nocode") {
            cfg.workload.ifetch_mpki = 0.0;
        }
        if tweak.contains("nohot") {
            cfg.workload.hot_access_rate = 0.0;
        }
        cache_details(cfg);
    }
    for (label, kind) in paper_schedulers() {
        let mut cfg = baseline_config(workload, &scale);
        cfg.mc.scheduler = kind;
        if tweak.contains("nocode") {
            cfg.workload.ifetch_mpki = 0.0;
        }
        if tweak.contains("nohot") {
            cfg.workload.hot_access_rate = 0.0;
        }
        if tweak.contains("noburst") {
            cfg.workload.row_burst_prob = 0.0;
        }
        if tweak.contains("nostore") {
            cfg.workload.store_fraction = 0.0;
        }
        let s = run_system(cfg).unwrap();
        println!(
            "{label:12} {:7.3} {:9.1} {:8.1} {:8.2} {:8.2} {:8.1} {:8} {:8}",
            s.user_ipc(),
            s.avg_read_latency_dram,
            s.row_buffer_hit_rate * 100.0,
            s.avg_read_queue_len,
            s.avg_write_queue_len,
            s.bandwidth_utilization * 100.0,
            s.reads_completed,
            s.writes_completed,
        );
    }
}
