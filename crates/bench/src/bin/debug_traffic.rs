//! Diagnostic: drive cores + L1s + shared L2 with a workload stream (no DRAM
//! timing) and break the off-chip read traffic down by address region, to
//! check the workload calibration against the paper's Figure 4 MPKI targets.

use cloudmc_cpu::{CoreConfig, InOrderCore, L2Config, SharedL2};
use cloudmc_workloads::{Workload, WorkloadStreams};

fn main() {
    let cycles: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    for w in Workload::all() {
        if let Some(filter) = std::env::args().nth(1) {
            if filter != "all" && !w.acronym().eq_ignore_ascii_case(&filter) {
                continue;
            }
        }
        let spec = w.spec();
        let mut streams = WorkloadStreams::from_spec(spec, 1);
        let mut cores: Vec<InOrderCore> = (0..spec.cores)
            .map(|i| InOrderCore::new(i, CoreConfig::default()))
            .collect();
        let mut l2 = SharedL2::new(L2Config::baseline());
        let (mut code, mut shared, mut private, mut writes) = (0u64, 0u64, 0u64, 0u64);
        let mut l2_accesses = 0u64;
        for _cycle in 0..cycles {
            for (i, core) in cores.iter_mut().enumerate() {
                let stream = streams.stream_mut(i);
                let mut src = || stream.next_op();
                let reqs = core.tick(&mut src);
                for r in reqs {
                    let out = l2.access(r.addr, r.write);
                    l2_accesses += 1;
                    if out.writeback.is_some() {
                        writes += 1;
                    }
                    if !r.write && !out.hit {
                        match r.addr {
                            a if (0x2000_0000..0x4000_0000).contains(&a) => code += 1,
                            a if (0x0400_0000..0x1400_0000).contains(&a) => shared += 1,
                            _ => private += 1,
                        }
                    }
                    if !r.write {
                        // Fill immediately: no DRAM timing in this diagnostic.
                        core.fill(r.addr);
                    }
                }
            }
        }
        let instr: u64 = cores.iter().map(InOrderCore::committed).sum();
        let kinstr = instr as f64 / 1000.0;
        println!(
            "{:9} ipc/core {:.2}  L2acc/ki {:6.1}  off-chip MPKI: code {:5.2} shared {:5.2} private {:5.2} total {:5.2}  wb/ki {:5.2}  L2miss% {:4.1}",
            w.acronym(),
            instr as f64 / (cycles as f64 * spec.cores as f64),
            l2_accesses as f64 / kinstr,
            code as f64 / kinstr,
            shared as f64 / kinstr,
            private as f64 / kinstr,
            (code + shared + private) as f64 / kinstr,
            writes as f64 / kinstr,
            100.0 * l2.stats().miss_ratio()
        );
    }
}
