//! # cloudmc-bench
//!
//! Experiment harness for the `cloudmc` reproduction of *"Memory Controller
//! Design Under Cloud Workloads"* (IISWC 2016).
//!
//! The [`experiments`] module contains one study per section of the paper's
//! evaluation (scheduling, page management, multi-channel) and one builder
//! per figure/table; the `repro` binary drives them from the command line and
//! the Criterion benches in `benches/` exercise reduced-scale versions.

#![forbid(unsafe_code)]

pub mod cli;
pub mod energy;
pub mod experiments;
pub mod fastforward;
pub mod meta;
pub mod qos;
pub mod reliability;
pub mod report;
pub mod sweep;
pub mod telemetry;
pub mod trace;

pub use cli::{parse, Options, Parsed, EXPERIMENTS, HELP};
pub use energy::{energy_study, EnergyPoint, EnergyReport};
pub use fastforward::{
    dense_config, fastforward_report, idle_heavy_config, scale_out_config, sharded_dense_config,
    FastForwardPoint, FastForwardReport, BENCH_THREADS,
};
pub use meta::{with_meta, RunMeta, GIT_DESCRIBE_ENV};
pub use qos::{paper_mixes, qos_study, QosPoint, QosReport};
pub use reliability::{
    power_policies, reliability_mix, reliability_study, sweep_fault_config, ReliabilityPoint,
    ReliabilityReport, FAULT_RATES_PER_MILLION, SCRUB_INTERVALS,
};
pub use sweep::{
    run_sweep, CellRecord, GroupSummary, ModeTiming, SweepOptions, SweepOutcome, SweepReport,
    SWEEP_WORKLOADS,
};
pub use telemetry::{
    telemetry_config, telemetry_layers, telemetry_study, TelemetryPoint, TelemetryReport,
    TELEMETRY_REPEATS,
};
pub use trace::{
    golden_config, golden_trace_path, regenerate_golden_trace, trace_study, GoldenCheck,
    TracePoint, TraceReport,
};

pub use experiments::{
    baseline_config, baseline_study, channel_study, config_report, figure1, figure10, figure11,
    figure12, figure13, figure14, figure2, figure3, figure4, figure5, figure6, figure7, figure8,
    figure9, page_policy_study, paper_schedulers, scheduler_study, ChannelStudy, Matrix, Scale,
};
pub use report::{Table, TextTable};
