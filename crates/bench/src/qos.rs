//! The multi-tenant QoS experiment: what does co-location cost each tenant,
//! and how much of it can the controller's QoS policies claw back?
//!
//! The paper evaluates its schedulers on workloads running *alone*; on a
//! consolidated cloud node they share the memory controller with other
//! tenants, and fairness schedulers like ATLAS and PAR-BS were designed for
//! exactly that regime. This experiment runs ≥3 two/three-tenant mixes (a
//! latency-critical service co-located with batch analytics) under all five
//! paper schedulers crossed with the QoS policies (`none`,
//! `static-partition`, `priority-boost`), plus each tenant *alone* on the
//! same core allocation as the slowdown baseline. Reported per point:
//! per-tenant slowdown (`IPC_alone / IPC_shared`), weighted speedup
//! (`Σ IPC_shared/IPC_alone`), max slowdown, and Jain's fairness index over
//! the per-tenant speedups. `repro qos` serializes everything as
//! `BENCH_qos.json`.

use cloudmc_memctrl::QosPolicyKind;
use cloudmc_sim::{mean, run_all_with_threads, SimStats, SystemConfig};
use cloudmc_workloads::{MixSpec, TenantSpec, Workload, WorkloadSpec};

use crate::experiments::{baseline_config, paper_schedulers, Scale};

/// The tenant mixes of the sweep as `(label, mix)` pairs: a latency-critical
/// scale-out service paired with decision-support or transactional batch
/// work, on the paper's 16-core pod.
#[must_use]
pub fn paper_mixes() -> Vec<(&'static str, MixSpec)> {
    vec![
        (
            "ws+tpch_q6",
            MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
                .and(TenantSpec::batch(Workload::TpchQ6, 8)),
        ),
        (
            "ds+tpch_q17",
            MixSpec::new(TenantSpec::latency_critical(Workload::DataServing, 8))
                .and(TenantSpec::batch(Workload::TpchQ17, 8)),
        ),
        (
            "ws+ms+tpcc",
            MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
                .and(TenantSpec::batch(Workload::MediaStreaming, 4))
                .and(TenantSpec::batch(Workload::TpcC1, 4)),
        ),
    ]
}

/// One point of the sweep: a (mix, scheduler, QoS policy) combination with
/// its alone-run baselines folded in.
#[derive(Debug, Clone)]
pub struct QosPoint {
    /// Mix label (see [`paper_mixes`]).
    pub mix: &'static str,
    /// Scheduler label.
    pub scheduler: String,
    /// QoS policy label.
    pub qos_policy: String,
    /// Full measured statistics of the shared run, including the per-tenant
    /// fields.
    pub stats: SimStats,
    /// Aggregate IPC of each tenant running alone on the same core
    /// allocation under the same scheduler (QoS has no effect alone).
    pub alone_ipc: Vec<f64>,
    /// Per-tenant slowdown: `IPC_alone / IPC_shared` (≥ 1 under contention).
    pub slowdown: Vec<f64>,
}

impl QosPoint {
    /// Weighted speedup: `Σ_t IPC_shared_t / IPC_alone_t` (the number of
    /// "alone-run equivalents" of work the consolidated node sustains;
    /// `tenant_count` means co-location was free).
    #[must_use]
    pub fn weighted_speedup(&self) -> f64 {
        self.slowdown
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .sum()
    }

    /// The worst tenant's slowdown.
    #[must_use]
    pub fn max_slowdown(&self) -> f64 {
        self.slowdown.iter().copied().fold(0.0, f64::max)
    }

    /// The worst *latency-critical* tenant's slowdown (the QoS target
    /// metric); falls back to [`QosPoint::max_slowdown`] if the mix has no
    /// latency-critical tenant.
    #[must_use]
    pub fn lc_slowdown(&self) -> f64 {
        let lc = self
            .slowdown
            .iter()
            .zip(self.stats.tenant_latency_critical.iter())
            .filter(|(_, &lc)| lc)
            .map(|(&s, _)| s)
            .fold(0.0, f64::max);
        if lc > 0.0 {
            lc
        } else {
            self.max_slowdown()
        }
    }

    /// Jain's fairness index over the per-tenant speedups
    /// (`(Σx)² / (n·Σx²)`; 1.0 = perfectly even slowdowns).
    #[must_use]
    pub fn fairness(&self) -> f64 {
        let speedups: Vec<f64> = self
            .slowdown
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        let sum: f64 = speedups.iter().sum();
        let sum_sq: f64 = speedups.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            0.0
        } else {
            sum * sum / (speedups.len() as f64 * sum_sq)
        }
    }
}

/// Results of the full QoS sweep.
#[derive(Debug, Clone)]
pub struct QosReport {
    /// One point per (mix, scheduler, QoS policy), in sweep order.
    pub points: Vec<QosPoint>,
}

/// A shared-run configuration for `mix` at `scale`.
fn mixed_config(mix: MixSpec, scale: &Scale) -> SystemConfig {
    let mut cfg = SystemConfig::mixed(mix);
    cfg.warmup_cpu_cycles = scale.warmup_cpu_cycles;
    cfg.measure_cpu_cycles = scale.measure_cpu_cycles;
    cfg.seed = scale.seed;
    cfg
}

/// Runs the QoS sweep: every mix × 5 schedulers × every QoS policy, plus the
/// alone-run baselines (one per mix tenant per scheduler).
#[must_use]
pub fn qos_study(scale: &Scale) -> QosReport {
    let mixes = paper_mixes();
    let schedulers = paper_schedulers();
    // Alone baselines first: each tenant on its own core allocation with the
    // whole memory system to itself (QoS policies are inert with one tenant,
    // so one baseline per scheduler covers all policies). Mixes reuse
    // workloads (Web Search appears twice), so baselines are deduplicated by
    // (scheduler, tenant spec).
    let mut alone_keys: Vec<(usize, WorkloadSpec)> = Vec::new();
    let mut configs = Vec::new();
    for (_, mix) in &mixes {
        for (s, (_, scheduler)) in schedulers.iter().enumerate() {
            for tenant in mix.tenants() {
                if alone_keys
                    .iter()
                    .any(|(ks, spec)| *ks == s && *spec == tenant.workload)
                {
                    continue;
                }
                alone_keys.push((s, tenant.workload));
                let mut cfg = baseline_config(tenant.workload.workload, scale);
                cfg.workload = tenant.workload;
                cfg.mc.scheduler = *scheduler;
                configs.push(cfg);
            }
        }
    }
    let alone_count = configs.len();
    for (_, mix) in &mixes {
        for (_, scheduler) in &schedulers {
            for qos in QosPolicyKind::all() {
                let mut cfg = mixed_config(*mix, scale);
                cfg.mc.scheduler = *scheduler;
                cfg.mc.qos.policy = qos;
                configs.push(cfg);
            }
        }
    }
    let mut results: Vec<SimStats> = run_all_with_threads(&configs, scale.threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("qos sweep point failed: {e}")))
        .collect();
    let shared = results.split_off(alone_count);
    let alone_results = results;
    let alone_ipc_of = |s: usize, spec: &WorkloadSpec| -> f64 {
        let idx = alone_keys
            .iter()
            .position(|(ks, kspec)| *ks == s && kspec == spec)
            .expect("alone baseline present for every (scheduler, tenant)");
        alone_results[idx].user_ipc()
    };
    let mut shared = shared.into_iter();
    let mut points = Vec::new();
    for (mix_label, mix) in &mixes {
        for (s, (sched_label, _)) in schedulers.iter().enumerate() {
            let alone: Vec<f64> = mix
                .tenants()
                .map(|tenant| alone_ipc_of(s, &tenant.workload))
                .collect();
            for qos in QosPolicyKind::all() {
                let stats = shared.next().expect("shared run present");
                let slowdown: Vec<f64> = alone
                    .iter()
                    .enumerate()
                    .map(|(t, &base)| {
                        let shared_ipc = stats.tenant_ipc(t);
                        if shared_ipc > 0.0 {
                            base / shared_ipc
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect();
                points.push(QosPoint {
                    mix: mix_label,
                    scheduler: sched_label.clone(),
                    qos_policy: qos.to_string(),
                    stats,
                    alone_ipc: alone.clone(),
                    slowdown,
                });
            }
        }
    }
    QosReport { points }
}

impl QosReport {
    /// Points for one mix under one QoS policy (all schedulers).
    fn select<'a>(&'a self, mix: &'a str, qos: &'a str) -> impl Iterator<Item = &'a QosPoint> {
        self.points
            .iter()
            .filter(move |p| p.mix == mix && p.qos_policy == qos)
    }

    /// Mean (over schedulers) worst latency-critical slowdown for one mix
    /// under one QoS policy — the headline number QoS is judged by.
    #[must_use]
    pub fn mean_lc_slowdown(&self, mix: &str, qos: &str) -> f64 {
        mean(self.select(mix, qos).map(QosPoint::lc_slowdown))
    }

    /// Mean (over schedulers) weighted speedup for one mix and QoS policy.
    #[must_use]
    pub fn mean_weighted_speedup(&self, mix: &str, qos: &str) -> f64 {
        mean(self.select(mix, qos).map(QosPoint::weighted_speedup))
    }

    /// Machine-readable JSON for `BENCH_qos.json`: a summary block per
    /// (mix, scheduler, QoS policy) plus every raw shared-run point.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"multi_tenant_qos\",\n");
        out.push_str("  \"unit\": \"slowdown_vs_alone_run\",\n  \"summary\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let slowdowns: Vec<String> = p.slowdown.iter().map(|s| format!("{s:.4}")).collect();
            out.push_str(&format!(
                "    {{\"mix\": \"{}\", \"scheduler\": \"{}\", \"qos_policy\": \"{}\", \
                 \"slowdown_per_tenant\": [{}], \"weighted_speedup\": {:.4}, \
                 \"max_slowdown\": {:.4}, \"lc_slowdown\": {:.4}, \"fairness\": {:.4}}}{}\n",
                p.mix,
                p.scheduler,
                p.qos_policy,
                slowdowns.join(", "),
                p.weighted_speedup(),
                p.max_slowdown(),
                p.lc_slowdown(),
                p.fairness(),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mix\": \"{}\", \"stats\": {}}}{}\n",
                p.mix,
                p.stats.to_json(),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "multi-tenant QoS (slowdown vs alone run; LC = latency-critical tenant)\n",
        );
        let mut last_mix = "";
        for p in &self.points {
            if p.mix != last_mix {
                out.push_str(&format!(
                    "\n{}\n{:<12} {:<18} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8}\n",
                    p.mix,
                    "scheduler",
                    "qos policy",
                    "LC slow",
                    "max slow",
                    "w.speedup",
                    "fairness",
                    "p50 lat",
                    "p95 lat",
                    "p99 lat"
                ));
                last_mix = p.mix;
            }
            out.push_str(&format!(
                "{:<12} {:<18} {:>8.3} {:>8.3} {:>9.3} {:>9.3} {:>8.1} {:>8.1} {:>8.1}\n",
                p.scheduler,
                p.qos_policy,
                p.lc_slowdown(),
                p.max_slowdown(),
                p.weighted_speedup(),
                p.fairness(),
                p.stats.read_latency_p50_dram,
                p.stats.read_latency_p95_dram,
                p.stats.read_latency_p99_dram,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_study_protects_the_latency_critical_tenant() {
        let scale = Scale {
            warmup_cpu_cycles: 4_000,
            measure_cpu_cycles: 40_000,
            seed: 1,
            threads: cloudmc_sim::default_threads(),
        };
        let report = qos_study(&scale);
        // 3 mixes x 5 schedulers x 3 QoS policies.
        assert_eq!(report.points.len(), 45);
        for p in &report.points {
            assert_eq!(p.slowdown.len(), p.stats.tenants);
            assert!(p.stats.tenants >= 2);
            assert!(
                p.slowdown.iter().all(|s| s.is_finite() && *s > 0.0),
                "{}/{}/{}: degenerate slowdowns {:?}",
                p.mix,
                p.scheduler,
                p.qos_policy,
                p.slowdown
            );
            let f = p.fairness();
            assert!((0.0..=1.0 + 1e-9).contains(&f), "fairness {f} out of range");
        }
        // The headline acceptance property: boosting the latency-critical
        // tenant must reduce its worst-case slowdown vs no QoS on the
        // flagship mix (averaged over the five schedulers).
        let none = report.mean_lc_slowdown("ws+tpch_q6", "none");
        let boost = report.mean_lc_slowdown("ws+tpch_q6", "priority-boost");
        assert!(
            boost < none,
            "priority-boost must cut LC slowdown: {boost:.3} vs {none:.3}"
        );
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"multi_tenant_qos\""));
        assert!(json.contains("\"qos_policy\": \"static-partition\""));
        assert!(json.contains("\"lc_slowdown\""));
        assert!(report.to_text().contains("w.speedup"));
    }
}
