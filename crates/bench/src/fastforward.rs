//! Fast-forward performance tracking: simulated-CPU-cycles-per-second with
//! the kernel's event-horizon fast-forward on and off, on an idle-heavy
//! stream and on a dense decision-support stream.
//!
//! The `repro fastforward` experiment serializes the result as
//! `BENCH_fastforward.json` so the performance trajectory of the simulator
//! itself is tracked alongside the paper's figures.

use std::time::Instant;

use cloudmc_sim::{run_system, SimStats, SystemConfig};
use cloudmc_workloads::Workload;

use crate::experiments::{baseline_config, Scale};

/// The idle-intensity factor of the benchmark's low-arrival-rate stream.
///
/// 2% of Web Search's off-chip rate models the low-utilization phases cloud
/// services spend most of their wall-clock in: tens of thousands of compute
/// instructions between memory events per core.
pub const IDLE_INTENSITY: f64 = 0.02;

/// The idle-heavy configuration: Web Search scaled to [`IDLE_INTENSITY`].
#[must_use]
pub fn idle_heavy_config(scale: &Scale) -> SystemConfig {
    let mut cfg = baseline_config(Workload::WebSearch, scale);
    cfg.workload = cfg.workload.with_intensity(IDLE_INTENSITY);
    cfg
}

/// The dense configuration: the unmodified TPC-H Q6 scan, the most
/// bandwidth-bound stream in the suite (the fast-forward's worst case).
#[must_use]
pub fn dense_config(scale: &Scale) -> SystemConfig {
    baseline_config(Workload::TpchQ6, scale)
}

/// Throughput of one configuration under one kernel mode.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Simulated CPU cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
}

/// One benchmark point: the same workload under both kernel modes.
#[derive(Debug, Clone)]
pub struct FastForwardPoint {
    /// Point name (`idle_heavy`, `tpch_q6`).
    pub name: &'static str,
    /// Total simulated CPU cycles per run.
    pub simulated_cpu_cycles: u64,
    /// Naive per-cycle loop.
    pub naive: Throughput,
    /// Event-horizon fast-forward.
    pub fast_forward: Throughput,
}

impl FastForwardPoint {
    /// Fast-forward speedup over the naive loop.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.fast_forward.cycles_per_sec / self.naive.cycles_per_sec
    }
}

/// The full report: both points plus the scale they ran at.
#[derive(Debug, Clone)]
pub struct FastForwardReport {
    /// Idle-heavy and dense benchmark points.
    pub points: Vec<FastForwardPoint>,
}

fn timed_run(cfg: SystemConfig) -> (SimStats, Throughput) {
    let total = cfg.total_cpu_cycles();
    let start = Instant::now();
    let stats = run_system(cfg).expect("valid benchmark configuration");
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (
        stats,
        Throughput {
            cycles_per_sec: total as f64 / wall,
            wall_seconds: wall,
        },
    )
}

fn measure_point(name: &'static str, cfg: SystemConfig) -> FastForwardPoint {
    let mut fast_cfg = cfg.clone();
    fast_cfg.fast_forward = true;
    let mut naive_cfg = cfg.clone();
    naive_cfg.fast_forward = false;
    // Warm the instruction/data caches of the *host* with one throwaway run,
    // then time each mode.
    let _ = timed_run(fast_cfg.clone());
    let (fast_stats, fast) = timed_run(fast_cfg);
    let (naive_stats, naive) = timed_run(naive_cfg);
    assert_eq!(
        fast_stats, naive_stats,
        "{name}: benchmark modes must stay bit-identical"
    );
    FastForwardPoint {
        name,
        simulated_cpu_cycles: cfg.total_cpu_cycles(),
        naive,
        fast_forward: fast,
    }
}

/// A representative full-intensity scale-out stream (Web Search, unscaled).
#[must_use]
pub fn scale_out_config(scale: &Scale) -> SystemConfig {
    baseline_config(Workload::WebSearch, scale)
}

/// Runs all benchmark points at `scale`.
#[must_use]
pub fn fastforward_report(scale: &Scale) -> FastForwardReport {
    FastForwardReport {
        points: vec![
            measure_point("idle_heavy", idle_heavy_config(scale)),
            measure_point("web_search", scale_out_config(scale)),
            measure_point("tpch_q6", dense_config(scale)),
        ],
    }
}

impl FastForwardReport {
    /// Machine-readable JSON for `BENCH_fastforward.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"event_horizon_fast_forward\",\n");
        out.push_str("  \"unit\": \"simulated_cpu_cycles_per_second\",\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"simulated_cpu_cycles\": {}, \
                 \"naive_cycles_per_sec\": {:.0}, \"fast_forward_cycles_per_sec\": {:.0}, \
                 \"speedup\": {:.3}}}{}\n",
                p.name,
                p.simulated_cpu_cycles,
                p.naive.cycles_per_sec,
                p.fast_forward.cycles_per_sec,
                p.speedup(),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "fast-forward throughput (simulated CPU cycles / second)\n\
             point        naive          fast-forward   speedup\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<12} {:>12.0}   {:>12.0}   {:>6.2}x\n",
                p.name,
                p.naive.cycles_per_sec,
                p.fast_forward.cycles_per_sec,
                p.speedup()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_runs_and_serializes() {
        let scale = Scale {
            warmup_cpu_cycles: 2_000,
            measure_cpu_cycles: 10_000,
            seed: 1,
            threads: 1,
        };
        let report = fastforward_report(&scale);
        assert_eq!(report.points.len(), 3);
        let json = report.to_json();
        assert!(json.contains("\"idle_heavy\""));
        assert!(json.contains("\"web_search\""));
        assert!(json.contains("\"tpch_q6\""));
        assert!(json.contains("speedup"));
        assert!(report.to_text().contains("speedup"));
        for p in &report.points {
            assert!(p.naive.wall_seconds > 0.0);
            assert!(p.fast_forward.cycles_per_sec > 0.0);
        }
    }
}
