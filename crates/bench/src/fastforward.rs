//! Fast-forward performance tracking: simulated-CPU-cycles-per-second under
//! each of the kernel's drive modes — the naive per-cycle loop, the horizon
//! recompute-and-jump loop, the event-driven kernel, and the event-driven
//! kernel with backend worker threads — on an idle-heavy stream, two dense
//! streams, and a sharded dense stream (the only point where the worker pool
//! actually engages; the single-shard points keep the threaded column as an
//! honest overhead check).
//!
//! The `repro fastforward` experiment serializes the result as
//! `BENCH_fastforward.json` so the performance trajectory of the simulator
//! itself is tracked alongside the paper's figures; every mode is asserted
//! bit-identical to the naive loop as a side effect of measuring it.

use std::time::Instant;

use cloudmc_sim::{run_system, SimStats, SystemConfig};
use cloudmc_workloads::Workload;

use crate::experiments::{baseline_config, Scale};

/// The idle-intensity factor of the benchmark's low-arrival-rate stream.
///
/// 2% of Web Search's off-chip rate models the low-utilization phases cloud
/// services spend most of their wall-clock in: tens of thousands of compute
/// instructions between memory events per core.
pub const IDLE_INTENSITY: f64 = 0.02;

/// The idle-heavy configuration: Web Search scaled to [`IDLE_INTENSITY`].
#[must_use]
pub fn idle_heavy_config(scale: &Scale) -> SystemConfig {
    let mut cfg = baseline_config(Workload::WebSearch, scale);
    cfg.workload = cfg.workload.with_intensity(IDLE_INTENSITY);
    cfg
}

/// The dense configuration: the unmodified TPC-H Q6 scan, the most
/// bandwidth-bound stream in the suite (the fast-forward's worst case).
#[must_use]
pub fn dense_config(scale: &Scale) -> SystemConfig {
    baseline_config(Workload::TpchQ6, scale)
}

/// Throughput of one configuration under one kernel mode.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Simulated CPU cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
}

/// Worker threads used for the threaded column of every benchmark point.
pub const BENCH_THREADS: usize = 2;

/// One benchmark point: the same workload under every kernel drive mode.
#[derive(Debug, Clone)]
pub struct FastForwardPoint {
    /// Point name (`idle_heavy`, `tpch_q6`, ...).
    pub name: &'static str,
    /// Total simulated CPU cycles per run.
    pub simulated_cpu_cycles: u64,
    /// Naive per-cycle loop (`fast_forward` off).
    pub naive: Throughput,
    /// Horizon recompute-and-jump loop (`fast_forward` on, `event_driven`
    /// off).
    pub horizon: Throughput,
    /// Event-driven kernel, sequential backend.
    pub event: Throughput,
    /// Event-driven kernel with [`BENCH_THREADS`] backend worker threads
    /// (only distinct from `event` on multi-shard points).
    pub event_threaded: Throughput,
}

impl FastForwardPoint {
    /// Headline speedup: the event-driven kernel over the naive loop.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.event.cycles_per_sec / self.naive.cycles_per_sec
    }

    /// The horizon loop's speedup over the naive loop (the PR-2 kernel).
    #[must_use]
    pub fn horizon_speedup(&self) -> f64 {
        self.horizon.cycles_per_sec / self.naive.cycles_per_sec
    }

    /// The threaded event kernel's speedup over the naive loop.
    #[must_use]
    pub fn threaded_speedup(&self) -> f64 {
        self.event_threaded.cycles_per_sec / self.naive.cycles_per_sec
    }
}

/// The full report: both points plus the scale they ran at.
#[derive(Debug, Clone)]
pub struct FastForwardReport {
    /// Idle-heavy and dense benchmark points.
    pub points: Vec<FastForwardPoint>,
}

fn timed_run(cfg: SystemConfig) -> (SimStats, Throughput) {
    let total = cfg.total_cpu_cycles();
    let start = Instant::now();
    let stats = run_system(cfg).expect("valid benchmark configuration");
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (
        stats,
        Throughput {
            cycles_per_sec: total as f64 / wall,
            wall_seconds: wall,
        },
    )
}

fn measure_point(name: &'static str, cfg: SystemConfig) -> FastForwardPoint {
    let mut naive_cfg = cfg.clone();
    naive_cfg.fast_forward = false;
    let mut horizon_cfg = cfg.clone();
    horizon_cfg.fast_forward = true;
    horizon_cfg.event_driven = false;
    let mut event_cfg = cfg.clone();
    event_cfg.fast_forward = true;
    event_cfg.event_driven = true;
    event_cfg.threads = 1;
    let mut threaded_cfg = event_cfg.clone();
    threaded_cfg.threads = BENCH_THREADS;
    // Warm the instruction/data caches of the *host* with one throwaway run,
    // then time each mode, pinning every mode to the naive results.
    let _ = timed_run(event_cfg.clone());
    let (event_stats, event) = timed_run(event_cfg);
    let (horizon_stats, horizon) = timed_run(horizon_cfg);
    let (threaded_stats, event_threaded) = timed_run(threaded_cfg);
    let (naive_stats, naive) = timed_run(naive_cfg);
    assert_eq!(
        event_stats, naive_stats,
        "{name}: the event kernel must stay bit-identical to the naive loop"
    );
    assert_eq!(
        horizon_stats, naive_stats,
        "{name}: the horizon loop must stay bit-identical to the naive loop"
    );
    assert_eq!(
        threaded_stats, naive_stats,
        "{name}: worker threads must stay bit-identical to the naive loop"
    );
    FastForwardPoint {
        name,
        simulated_cpu_cycles: cfg.total_cpu_cycles(),
        naive,
        horizon,
        event,
        event_threaded,
    }
}

/// A representative full-intensity scale-out stream (Web Search, unscaled).
#[must_use]
pub fn scale_out_config(scale: &Scale) -> SystemConfig {
    baseline_config(Workload::WebSearch, scale)
}

/// The dense scan on a four-shard backend: the one point where the threaded
/// column exercises the worker pool (single-shard backends never fan out).
#[must_use]
pub fn sharded_dense_config(scale: &Scale) -> SystemConfig {
    let mut cfg = dense_config(scale);
    cfg.num_channels = 4;
    cfg
}

/// Runs all benchmark points at `scale`.
#[must_use]
pub fn fastforward_report(scale: &Scale) -> FastForwardReport {
    FastForwardReport {
        points: vec![
            measure_point("idle_heavy", idle_heavy_config(scale)),
            measure_point("web_search", scale_out_config(scale)),
            measure_point("tpch_q6", dense_config(scale)),
            measure_point("tpch_q6_4shards", sharded_dense_config(scale)),
        ],
    }
}

impl FastForwardReport {
    /// Machine-readable JSON for `BENCH_fastforward.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"event_driven_fast_forward\",\n");
        out.push_str("  \"unit\": \"simulated_cpu_cycles_per_second\",\n");
        out.push_str(&format!(
            "  \"threads\": {BENCH_THREADS},\n  \"points\": [\n"
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"simulated_cpu_cycles\": {}, \
                 \"naive_cycles_per_sec\": {:.0}, \"horizon_cycles_per_sec\": {:.0}, \
                 \"event_cycles_per_sec\": {:.0}, \"event_threads_cycles_per_sec\": {:.0}, \
                 \"horizon_speedup\": {:.3}, \"speedup\": {:.3}, \
                 \"threaded_speedup\": {:.3}}}{}\n",
                p.name,
                p.simulated_cpu_cycles,
                p.naive.cycles_per_sec,
                p.horizon.cycles_per_sec,
                p.event.cycles_per_sec,
                p.event_threaded.cycles_per_sec,
                p.horizon_speedup(),
                p.speedup(),
                p.threaded_speedup(),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "fast-forward throughput (simulated CPU cycles / second; threaded = {BENCH_THREADS} workers)\n\
             point             naive        horizon          event   event+threads   speedup\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<15} {:>10.0}   {:>12.0}   {:>12.0}   {:>13.0}   {:>6.2}x\n",
                p.name,
                p.naive.cycles_per_sec,
                p.horizon.cycles_per_sec,
                p.event.cycles_per_sec,
                p.event_threaded.cycles_per_sec,
                p.speedup()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_runs_and_serializes() {
        let scale = Scale {
            warmup_cpu_cycles: 2_000,
            measure_cpu_cycles: 10_000,
            seed: 1,
            threads: 1,
        };
        let report = fastforward_report(&scale);
        assert_eq!(report.points.len(), 4);
        let json = report.to_json();
        assert!(json.contains("\"idle_heavy\""));
        assert!(json.contains("\"web_search\""));
        assert!(json.contains("\"tpch_q6\""));
        assert!(json.contains("\"tpch_q6_4shards\""));
        assert!(json.contains("event_threads_cycles_per_sec"));
        assert!(json.contains("speedup"));
        assert!(report.to_text().contains("speedup"));
        for p in &report.points {
            assert!(p.naive.wall_seconds > 0.0);
            assert!(p.horizon.cycles_per_sec > 0.0);
            assert!(p.event.cycles_per_sec > 0.0);
            assert!(p.event_threaded.cycles_per_sec > 0.0);
        }
    }
}
