//! Plain-text and CSV rendering of experiment results.

use std::fmt::Write as _;

/// A rectangular result table: one row per workload (plus category-average
/// rows), one column per configuration, matching the layout of the paper's
/// figures.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title, e.g. "Figure 1: User IPC normalized to FR-FCFS".
    pub title: String,
    /// Column headers (configuration labels).
    pub columns: Vec<String>,
    /// Rows: (label, one value per column).
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-text note on how to read the table (expected shape, units).
    pub note: String,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Looks up a value by row label and column label.
    #[must_use]
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|(label, _)| label == row)?;
        row.1.get(col).copied()
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once("workload".len()))
            .max()
            .unwrap_or(8)
            + 2;
        let col_width = self
            .columns
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(9)
            + 2;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        if !self.note.is_empty() {
            let _ = writeln!(out, "# {}", self.note);
        }
        let _ = write!(out, "{:<label_width$}", "workload");
        for c in &self.columns {
            let _ = write!(out, "{c:>col_width$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:<label_width$}");
            for v in values {
                let _ = write!(out, "{v:>col_width$.3}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the table as CSV (header row plus one line per row).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "workload");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label}");
            for v in values {
                let _ = write!(out, ",{v:.6}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// A table of strings (used for Table 4, the best mapping per workload).
#[derive(Debug, Clone, PartialEq)]
pub struct TextTable {
    /// Title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows: (label, one string per column).
    pub rows: Vec<(String, Vec<String>)>,
}

impl TextTable {
    /// Creates an empty text table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<String>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((label.into(), values));
    }

    /// Renders as aligned plain text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once("workload".len()))
            .max()
            .unwrap_or(8)
            + 2;
        let col_width = self
            .rows
            .iter()
            .flat_map(|(_, vs)| vs.iter().map(String::len))
            .chain(self.columns.iter().map(String::len))
            .max()
            .unwrap_or(10)
            + 2;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:<label_width$}", "workload");
        for c in &self.columns {
            let _ = write!(out, "{c:>col_width$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:<label_width$}");
            for v in values {
                let _ = write!(out, "{v:>col_width$}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure X", vec!["A".to_owned(), "B".to_owned()]);
        t.push_row("DS", vec![1.0, 0.5]);
        t.push_row("MR", vec![0.25, 2.0]);
        t.note = "higher is better".to_owned();
        t
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let text = sample().to_text();
        assert!(text.contains("Figure X"));
        assert!(text.contains("higher is better"));
        assert!(text.contains("DS"));
        assert!(text.contains("2.000"));
        assert!(text.contains("0.250"));
    }

    #[test]
    fn csv_rendering_is_parseable() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "workload,A,B");
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row[0], "DS");
        assert!((row[1].parse::<f64>().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn value_lookup_by_labels() {
        let t = sample();
        assert_eq!(t.value("MR", "B"), Some(2.0));
        assert_eq!(t.value("MR", "C"), None);
        assert_eq!(t.value("XX", "A"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }

    #[test]
    fn text_table_renders() {
        let mut t = TextTable::new("Table 4", vec!["2-channel".to_owned()]);
        t.push_row("DS", vec!["RoRaBaChCo".to_owned()]);
        let text = t.to_text();
        assert!(text.contains("Table 4"));
        assert!(text.contains("RoRaBaChCo"));
    }
}
