//! The reliability experiment: what do DRAM faults, ECC handling and patrol
//! scrubbing cost a consolidated cloud node?
//!
//! The paper's controllers are evaluated on fault-free memory; production
//! cloud nodes run with ECC, patrol scrub and page/row retirement, and all
//! of that machinery competes with demand traffic for the very controller
//! resources the paper studies. This experiment co-locates a
//! latency-critical service with batch analytics (the flagship mix of the
//! QoS study) and sweeps transient-fault rates × patrol-scrub intervals ×
//! rank power policies under the poison-and-continue uncorrectable policy,
//! against a fault-free baseline per power policy. Reported per point:
//! corrected/uncorrectable counts, demand retries, scrub bandwidth overhead
//! (scrub reads as a fraction of all serviced reads), rows retired, poisoned
//! lines, and the latency-critical tenant's slowdown versus the fault-free
//! baseline. `repro reliability` serializes everything as
//! `BENCH_reliability.json`.
//!
//! The power-policy axis is the paper tie-in: the fault model scales
//! transient-flip probability with power-state residency (cells in
//! power-down and self-refresh are refreshed less aggressively), so the
//! energy savings of Section 5's power policies buy a measurable reliability
//! cost — exactly the kind of cross-subsystem interaction the controller
//! has to arbitrate.

use cloudmc_memctrl::{FaultConfig, PowerPolicyKind, UncorrectablePolicy};
use cloudmc_sim::{run_all_with_threads, SimStats, SystemConfig};
use cloudmc_workloads::{MixSpec, TenantSpec, Workload};

use crate::experiments::Scale;

/// Transient-fault rates of the sweep, in expected flips per million
/// active-state reads (scaled up by the fault model in low-power states).
pub const FAULT_RATES_PER_MILLION: [u64; 2] = [50, 500];

/// Patrol-scrub intervals of the sweep in DRAM cycles per scrub read
/// (0 = scrubbing off).
pub const SCRUB_INTERVALS: [u64; 2] = [0, 250];

/// Rank power policies of the sweep: none (always active) versus the
/// idle-timer power-down policy, whose low-power residency raises the
/// modeled transient-fault rate.
#[must_use]
pub fn power_policies() -> [PowerPolicyKind; 2] {
    [PowerPolicyKind::None, PowerPolicyKind::IdleTimer]
}

/// The tenant mix the sweep runs: the QoS study's flagship pairing of a
/// latency-critical scale-out service with batch decision support.
#[must_use]
pub fn reliability_mix() -> MixSpec {
    MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8))
}

/// The fault model for one sweep point: poison-and-continue (a sweep must
/// survive uncorrectable errors), a pinch of planted stuck cells so the
/// discovery/retirement path is exercised, and the given transient rate and
/// scrub cadence.
#[must_use]
pub fn sweep_fault_config(rate_per_million: u64, scrub_interval: u64, seed: u64) -> FaultConfig {
    let mut fc = FaultConfig::baseline();
    fc.seed = seed;
    fc.transient_rate_fp = FaultConfig::rate_per_million_reads(rate_per_million);
    fc.scrub_interval = scrub_interval;
    fc.stuck_rows_per_rank = 2;
    fc.retire_threshold = 3;
    fc.on_uncorrectable = UncorrectablePolicy::PoisonAndContinue;
    fc
}

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct ReliabilityPoint {
    /// Transient-fault rate in flips per million reads (0 for the fault-free
    /// baselines).
    pub rate_per_million: u64,
    /// Patrol-scrub interval in DRAM cycles (0 = off).
    pub scrub_interval: u64,
    /// Power policy label.
    pub power_policy: String,
    /// Full measured statistics, including the reliability counters.
    pub stats: SimStats,
    /// Latency-critical tenant slowdown versus the fault-free baseline under
    /// the same power policy (`IPC_clean / IPC_faulty`; 1.0 = faults were
    /// free).
    pub lc_slowdown: f64,
}

impl ReliabilityPoint {
    /// Sweep-point label, e.g. `r500/scrub250/idle-timer`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "r{}/scrub{}/{}",
            self.rate_per_million, self.scrub_interval, self.power_policy
        )
    }

    /// Scrub bandwidth overhead: patrol reads as a fraction of all reads the
    /// devices serviced (demand + scrub).
    #[must_use]
    pub fn scrub_overhead(&self) -> f64 {
        let scrub = self.stats.scrub_reads_completed as f64;
        let total = scrub + self.stats.reads_completed as f64;
        if total == 0.0 {
            0.0
        } else {
            scrub / total
        }
    }
}

/// Results of the full reliability sweep.
#[derive(Debug, Clone)]
pub struct ReliabilityReport {
    /// Fault-free baselines, one per power policy, in [`power_policies`]
    /// order (their `rate_per_million` is 0 and `lc_slowdown` is 1.0).
    pub baselines: Vec<ReliabilityPoint>,
    /// Faulty points: rate × scrub interval × power policy, rate-major.
    pub points: Vec<ReliabilityPoint>,
}

fn mixed_config(scale: &Scale, power: PowerPolicyKind) -> SystemConfig {
    let mut cfg = SystemConfig::mixed(reliability_mix());
    cfg.warmup_cpu_cycles = scale.warmup_cpu_cycles;
    cfg.measure_cpu_cycles = scale.measure_cpu_cycles;
    cfg.seed = scale.seed;
    cfg.mc.power_policy = power;
    cfg
}

/// Runs the reliability sweep: a fault-free baseline per power policy, then
/// every fault rate × scrub interval × power policy with poison-and-continue.
///
/// # Panics
///
/// Panics if any sweep point fails to run (invalid configuration — a harness
/// bug, not a data condition; fail-stop is not part of this sweep).
#[must_use]
pub fn reliability_study(scale: &Scale) -> ReliabilityReport {
    let powers = power_policies();
    let mut configs: Vec<SystemConfig> = powers
        .iter()
        .map(|&power| mixed_config(scale, power))
        .collect();
    for &rate in &FAULT_RATES_PER_MILLION {
        for &scrub in &SCRUB_INTERVALS {
            for &power in &powers {
                let mut cfg = mixed_config(scale, power);
                cfg.mc.fault_model = Some(sweep_fault_config(rate, scrub, scale.seed));
                configs.push(cfg);
            }
        }
    }
    let mut results: Vec<SimStats> = run_all_with_threads(&configs, scale.threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("reliability sweep point failed: {e}")))
        .collect();
    let faulty = results.split_off(powers.len());
    let baselines: Vec<ReliabilityPoint> = powers
        .iter()
        .zip(results)
        .map(|(&power, stats)| ReliabilityPoint {
            rate_per_million: 0,
            scrub_interval: 0,
            power_policy: power.to_string(),
            stats,
            lc_slowdown: 1.0,
        })
        .collect();
    let mut faulty = faulty.into_iter();
    let mut points = Vec::new();
    for &rate in &FAULT_RATES_PER_MILLION {
        for &scrub in &SCRUB_INTERVALS {
            for (p, &power) in powers.iter().enumerate() {
                let stats = faulty.next().expect("faulty run present");
                let clean_ipc = baselines[p].stats.tenant_ipc(0);
                let faulty_ipc = stats.tenant_ipc(0);
                let lc_slowdown = if faulty_ipc > 0.0 {
                    clean_ipc / faulty_ipc
                } else {
                    f64::INFINITY
                };
                points.push(ReliabilityPoint {
                    rate_per_million: rate,
                    scrub_interval: scrub,
                    power_policy: power.to_string(),
                    stats,
                    lc_slowdown,
                });
            }
        }
    }
    ReliabilityReport { baselines, points }
}

impl ReliabilityReport {
    fn all_points(&self) -> impl Iterator<Item = &ReliabilityPoint> {
        self.baselines.iter().chain(self.points.iter())
    }

    /// Machine-readable JSON for `BENCH_reliability.json`: a summary block
    /// per point plus every raw run (baselines included), whose `stats`
    /// objects carry the full reliability counter set.
    #[must_use]
    pub fn to_json(&self) -> String {
        let total = self.baselines.len() + self.points.len();
        let mut out = String::from("{\n  \"benchmark\": \"reliability\",\n");
        out.push_str("  \"unit\": \"errors_and_slowdown_vs_fault_free\",\n  \"summary\": [\n");
        for (i, p) in self.all_points().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"rate_per_million\": {}, \"scrub_interval\": {}, \
                 \"power_policy\": \"{}\", \"ecc_corrected\": {}, \
                 \"ecc_detected_uncorrectable\": {}, \"demand_retries\": {}, \
                 \"scrub_reads_completed\": {}, \"scrub_overhead\": {:.6}, \
                 \"rows_retired\": {}, \"lines_poisoned\": {}, \"faults_injected\": {}, \
                 \"faults_latent\": {}, \"lc_slowdown\": {:.4}}}{}\n",
                p.label(),
                p.rate_per_million,
                p.scrub_interval,
                p.power_policy,
                p.stats.ecc_corrected,
                p.stats.ecc_detected_uncorrectable,
                p.stats.demand_retries,
                p.stats.scrub_reads_completed,
                p.scrub_overhead(),
                p.stats.rows_retired,
                p.stats.lines_poisoned,
                p.stats.faults_injected,
                p.stats.faults_latent,
                p.lc_slowdown,
                if i + 1 == total { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"points\": [\n");
        for (i, p) in self.all_points().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"stats\": {}}}{}\n",
                p.label(),
                p.stats.to_json(),
                if i + 1 == total { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "reliability (ws+tpch_q6 mix, poison-and-continue; \
             LC slowdown vs fault-free baseline)\n\n",
        );
        out.push_str(&format!(
            "{:<26} {:>9} {:>7} {:>8} {:>9} {:>7} {:>8} {:>8}\n",
            "point",
            "corrected",
            "uncorr",
            "retries",
            "scrub ovh",
            "retired",
            "poisoned",
            "LC slow"
        ));
        for p in self.all_points() {
            out.push_str(&format!(
                "{:<26} {:>9} {:>7} {:>8} {:>8.2}% {:>7} {:>8} {:>8.3}\n",
                p.label(),
                p.stats.ecc_corrected,
                p.stats.ecc_detected_uncorrectable,
                p.stats.demand_retries,
                p.scrub_overhead() * 100.0,
                p.stats.rows_retired,
                p.stats.lines_poisoned,
                p.lc_slowdown,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_study_reports_errors_overhead_and_slowdown() {
        let scale = Scale {
            warmup_cpu_cycles: 4_000,
            measure_cpu_cycles: 40_000,
            seed: 1,
            threads: cloudmc_sim::default_threads(),
        };
        let report = reliability_study(&scale);
        assert_eq!(report.baselines.len(), 2);
        // 2 rates x 2 scrub intervals x 2 power policies.
        assert_eq!(report.points.len(), 8);
        for b in &report.baselines {
            assert_eq!(b.stats.ecc_corrected, 0, "fault-free baseline saw ECC");
            assert_eq!(b.stats.faults_injected, 0);
            assert_eq!(b.stats.scrub_reads_issued, 0);
        }
        for p in &report.points {
            assert!(p.stats.faults_injected > 0, "{}: no faults", p.label());
            assert!(
                p.lc_slowdown.is_finite() && p.lc_slowdown > 0.0,
                "{}: degenerate slowdown {}",
                p.label(),
                p.lc_slowdown
            );
            if p.scrub_interval > 0 {
                assert!(p.stats.scrub_reads_issued > 0, "{}: no scrubs", p.label());
                assert!(p.scrub_overhead() > 0.0, "{}: free scrubbing", p.label());
            } else {
                assert_eq!(p.stats.scrub_reads_issued, 0, "{}", p.label());
            }
            // Conservation holds on every point.
            assert_eq!(
                p.stats.faults_injected,
                p.stats.faults_corrected + p.stats.faults_uncorrectable + p.stats.faults_latent,
                "{}: ledger out of balance",
                p.label()
            );
        }
        // The higher fault rate injects more faults than the lower one under
        // identical conditions.
        let errors_at = |rate: u64| -> u64 {
            report
                .points
                .iter()
                .filter(|p| p.rate_per_million == rate)
                .map(|p| p.stats.faults_injected)
                .sum()
        };
        assert!(errors_at(500) > errors_at(50));
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"reliability\""));
        assert!(json.contains("\"scrub_overhead\""));
        assert!(json.contains("\"lc_slowdown\""));
        assert!(report.to_text().contains("LC slow"));
    }
}
