//! Trace capture & replay round-trip tracking: wall-clock cost of recording
//! a run, replay throughput against the synthetic generators, and the
//! checked-in golden mini-trace that pins the generator↔trace contract.
//!
//! The `repro trace` experiment serializes the result as `BENCH_trace.json`
//! so the trace subsystem's overhead is tracked alongside the paper's
//! figures. Every point asserts the record→replay equivalence guarantee
//! (bit-identical `SimStats`) before reporting timings.

use std::path::PathBuf;
use std::time::Instant;

use cloudmc_sim::{run_system, SimStats, SystemConfig, WorkloadSource};
use cloudmc_workloads::{MixSpec, TenantSpec, Workload};

use crate::experiments::{baseline_config, Scale};

/// One record/replay round trip of a single configuration.
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Point name (`web_search`, `ws+tpch_q6`).
    pub name: &'static str,
    /// Records captured over the whole run (warm-up plus measurement).
    pub records: u64,
    /// Size of the captured trace file in bytes.
    pub trace_bytes: u64,
    /// Wall-clock seconds of the plain synthetic run (no recording).
    pub synthetic_wall_s: f64,
    /// Wall-clock seconds of the recording run.
    pub record_wall_s: f64,
    /// Wall-clock seconds of the replay run.
    pub replay_wall_s: f64,
}

impl TracePoint {
    /// Recording overhead relative to the plain synthetic run.
    #[must_use]
    pub fn record_overhead(&self) -> f64 {
        self.record_wall_s / self.synthetic_wall_s.max(1e-9)
    }

    /// Replay speed relative to the plain synthetic run (below 1.0 means
    /// replay is faster than generating).
    #[must_use]
    pub fn replay_ratio(&self) -> f64 {
        self.replay_wall_s / self.synthetic_wall_s.max(1e-9)
    }
}

/// Result of replaying the checked-in golden mini-trace.
#[derive(Debug, Clone)]
pub struct GoldenCheck {
    /// Size of the golden trace file in bytes.
    pub trace_bytes: u64,
    /// User instructions committed by the replay.
    pub user_instructions: u64,
    /// Whether the replay matched the synthetic run of the same pinned
    /// configuration bit for bit.
    pub bit_identical: bool,
}

/// The full report: round-trip points plus the golden-trace check.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// One point per swept configuration.
    pub points: Vec<TracePoint>,
    /// The golden mini-trace check.
    pub golden: GoldenCheck,
}

/// The pinned configuration of the golden mini-trace at `tests/data/`: a
/// small latency-critical Web Search + batch TPC-H Q6 mix, short enough to
/// keep the checked-in file a few tens of kilobytes.
#[must_use]
pub fn golden_config() -> SystemConfig {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 2))
        .and(TenantSpec::batch(Workload::TpchQ6, 2));
    let mut cfg = SystemConfig::mixed(mix);
    cfg.warmup_cpu_cycles = 1_000;
    cfg.measure_cpu_cycles = 4_000;
    cfg.seed = 42;
    cfg
}

/// Path of the checked-in golden mini-trace.
#[must_use]
pub fn golden_trace_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/golden_mix.trace")
}

/// Regenerates the golden mini-trace in place from [`golden_config`]. Only
/// for deliberate generator changes: `tests/trace_replay_equivalence.rs`
/// pins the file against the generators byte for byte.
///
/// # Errors
///
/// Returns a description of the problem if the run or the sink fails.
pub fn regenerate_golden_trace() -> Result<PathBuf, String> {
    let path = golden_trace_path();
    let mut cfg = golden_config();
    cfg.trace_record = Some(path.clone());
    run_system(cfg)?;
    Ok(path)
}

fn timed(cfg: SystemConfig) -> (SimStats, f64) {
    let start = Instant::now();
    let stats = run_system(cfg).expect("valid trace benchmark configuration");
    (stats, start.elapsed().as_secs_f64().max(1e-9))
}

fn measure_point(name: &'static str, cfg: SystemConfig) -> TracePoint {
    let trace = std::env::temp_dir().join(format!(
        "cloudmc_repro_trace_{name}_{}.trace",
        std::process::id()
    ));
    // Host-cache warm-up, then the plain synthetic run.
    let _ = timed(cfg.clone());
    let (synthetic, synthetic_wall_s) = timed(cfg.clone());

    let mut record_cfg = cfg.clone();
    record_cfg.trace_record = Some(trace.clone());
    let (recorded, record_wall_s) = timed(record_cfg);
    assert_eq!(synthetic, recorded, "{name}: recording perturbed the run");

    let mut replay_cfg = cfg;
    replay_cfg.source = WorkloadSource::Trace(trace.clone());
    let (replayed, replay_wall_s) = timed(replay_cfg);
    assert_eq!(
        recorded, replayed,
        "{name}: replay diverged from the recording"
    );

    let trace_bytes = std::fs::metadata(&trace).map(|m| m.len()).unwrap_or(0);
    // Count records streaming — a standard-scale trace is tens of MB.
    let records = std::fs::File::open(&trace)
        .map(|f| std::io::BufRead::lines(std::io::BufReader::new(f)).count() as u64)
        .unwrap_or(0);
    std::fs::remove_file(&trace).ok();
    TracePoint {
        name,
        records,
        trace_bytes,
        synthetic_wall_s,
        record_wall_s,
        replay_wall_s,
    }
}

fn check_golden() -> GoldenCheck {
    let cfg = golden_config();
    let synthetic = run_system(cfg.clone()).expect("golden configuration");
    let mut replay_cfg = cfg;
    replay_cfg.source = WorkloadSource::Trace(golden_trace_path());
    let replayed = run_system(replay_cfg).expect("golden trace replay");
    GoldenCheck {
        trace_bytes: std::fs::metadata(golden_trace_path())
            .map(|m| m.len())
            .unwrap_or(0),
        user_instructions: replayed.user_instructions,
        bit_identical: synthetic == replayed,
    }
}

/// Runs the trace round-trip study at `scale`: a solo scale-out stream and
/// a latency-critical + batch mix, plus the golden-trace check.
///
/// # Panics
///
/// Panics if any round trip breaks the record→replay equivalence guarantee.
#[must_use]
pub fn trace_study(scale: &Scale) -> TraceReport {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    let mut mixed = SystemConfig::mixed(mix);
    mixed.warmup_cpu_cycles = scale.warmup_cpu_cycles;
    mixed.measure_cpu_cycles = scale.measure_cpu_cycles;
    mixed.seed = scale.seed;
    let golden = check_golden();
    assert!(
        golden.bit_identical,
        "golden trace replay diverged from the generators (regenerate \
         tests/data/golden_mix.trace if the generator change is deliberate)"
    );
    TraceReport {
        points: vec![
            measure_point("web_search", baseline_config(Workload::WebSearch, scale)),
            measure_point("ws+tpch_q6", mixed),
        ],
        golden,
    }
}

impl TraceReport {
    /// Machine-readable JSON for `BENCH_trace.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"trace_record_replay\",\n");
        out.push_str("  \"unit\": \"wall_seconds\",\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"records\": {}, \"trace_bytes\": {}, \
                 \"synthetic_wall_s\": {:.4}, \"record_wall_s\": {:.4}, \
                 \"replay_wall_s\": {:.4}, \"record_overhead\": {:.3}, \
                 \"replay_ratio\": {:.3}}}{}\n",
                p.name,
                p.records,
                p.trace_bytes,
                p.synthetic_wall_s,
                p.record_wall_s,
                p.replay_wall_s,
                p.record_overhead(),
                p.replay_ratio(),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"golden\": {{\"trace_bytes\": {}, \"user_instructions\": {}, \
             \"bit_identical\": {}}}\n}}\n",
            self.golden.trace_bytes, self.golden.user_instructions, self.golden.bit_identical
        ));
        out
    }

    /// Human-readable summary for the terminal.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "trace record/replay round trip (bit-identical stats asserted)\n\
             point         records      bytes   synth(s)  record(s)  replay(s)  rec-ovh  rep-ratio\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<12} {:>8} {:>10} {:>9.3} {:>10.3} {:>10.3} {:>8.2} {:>10.2}\n",
                p.name,
                p.records,
                p.trace_bytes,
                p.synthetic_wall_s,
                p.record_wall_s,
                p.replay_wall_s,
                p.record_overhead(),
                p.replay_ratio(),
            ));
        }
        out.push_str(&format!(
            "golden trace: {} bytes, {} user instructions, bit-identical: {}\n",
            self.golden.trace_bytes, self.golden.user_instructions, self.golden.bit_identical
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_runs_and_serializes() {
        let scale = Scale {
            warmup_cpu_cycles: 2_000,
            measure_cpu_cycles: 10_000,
            seed: 1,
            threads: 1,
        };
        let report = trace_study(&scale);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.records > 0);
            assert!(p.trace_bytes > 0);
            assert!(p.record_wall_s > 0.0 && p.replay_wall_s > 0.0);
        }
        assert!(report.golden.bit_identical);
        let json = report.to_json();
        assert!(json.contains("\"web_search\""));
        assert!(json.contains("\"ws+tpch_q6\""));
        assert!(json.contains("\"golden\""));
        assert!(report.to_text().contains("golden trace"));
    }

    #[test]
    fn golden_config_is_small_and_valid() {
        let cfg = golden_config();
        cfg.validate().unwrap();
        assert_eq!(cfg.core_count(), 4);
        assert!(cfg.total_cpu_cycles() <= 5_000);
    }
}
