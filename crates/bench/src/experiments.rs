//! The experiment harness: one function per figure/table of the paper.
//!
//! Every experiment builds a set of [`SystemConfig`]s, runs them (in
//! parallel) through the full-system simulator, and renders the same rows and
//! series the paper reports. Absolute numbers differ from the paper (the
//! substrate is a reduced-scale simulator, not the authors' Simics/GEMS
//! testbed), but the *shape* — which policy wins, by roughly what factor —
//! is the reproduction target; EXPERIMENTS.md records both.

use cloudmc_memctrl::{
    AddressMapping, AtlasConfig, McConfig, PagePolicyKind, ParBsConfig, RlConfig, SchedulerKind,
};
use cloudmc_sim::{run_all_with_threads, SimStats, SystemConfig};
use cloudmc_workloads::{Category, Workload};

use crate::report::{Table, TextTable};

/// A named tweak applied to the baseline controller configuration of one
/// experiment variant.
type McTweak = Box<dyn Fn(&mut McConfig) + Sync>;

/// How long each simulation point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// CPU cycles of warm-up.
    pub warmup_cpu_cycles: u64,
    /// CPU cycles of measurement.
    pub measure_cpu_cycles: u64,
    /// Workload generation seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl Scale {
    /// Very small runs for smoke tests and Criterion benches.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup_cpu_cycles: 20_000,
            measure_cpu_cycles: 120_000,
            seed: 1,
            threads: cloudmc_sim::default_threads(),
        }
    }

    /// Default scale used by the `repro` binary (a few minutes for the full
    /// set of figures on a laptop).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            warmup_cpu_cycles: 150_000,
            measure_cpu_cycles: 750_000,
            seed: 1,
            threads: cloudmc_sim::default_threads(),
        }
    }

    /// Longer runs for tighter confidence (tens of minutes).
    #[must_use]
    pub fn full() -> Self {
        Self {
            warmup_cpu_cycles: 400_000,
            measure_cpu_cycles: 3_000_000,
            seed: 1,
            threads: cloudmc_sim::default_threads(),
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::standard()
    }
}

/// Baseline system configuration (Table 2) for one workload at one scale.
#[must_use]
pub fn baseline_config(workload: Workload, scale: &Scale) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = scale.warmup_cpu_cycles;
    cfg.measure_cpu_cycles = scale.measure_cpu_cycles;
    cfg.seed = scale.seed;
    cfg
}

/// Results of a (workload x configuration) sweep.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Workloads, one per row.
    pub workloads: Vec<Workload>,
    /// Configuration labels, one per column.
    pub columns: Vec<String>,
    /// `results[workload][column]`.
    pub results: Vec<Vec<SimStats>>,
}

impl Matrix {
    /// The result for (`workload`, column index).
    #[must_use]
    pub fn get(&self, workload: Workload, column: usize) -> Option<&SimStats> {
        let row = self.workloads.iter().position(|&w| w == workload)?;
        self.results.get(row)?.get(column)
    }

    /// Builds a figure-style table of `metric`, optionally normalizing each
    /// row to the value of `normalize_to` column, and appending the
    /// per-category average rows the paper shows (`Avg_SCO`, `Avg_TRS`,
    /// `Avg_DSP`).
    #[must_use]
    pub fn metric_table(
        &self,
        title: &str,
        note: &str,
        metric: impl Fn(&SimStats) -> f64,
        normalize_to: Option<usize>,
    ) -> Table {
        let mut table = Table::new(title, self.columns.clone());
        table.note = note.to_owned();
        let mut per_category: Vec<(Category, Vec<Vec<f64>>)> = vec![
            (Category::ScaleOut, Vec::new()),
            (Category::Transactional, Vec::new()),
            (Category::DecisionSupport, Vec::new()),
        ];
        for (row, workload) in self.workloads.iter().enumerate() {
            let raw: Vec<f64> = self.results[row].iter().map(&metric).collect();
            let values: Vec<f64> = match normalize_to {
                Some(base) => {
                    let b = raw[base];
                    raw.iter()
                        .map(|v| if b == 0.0 { 0.0 } else { v / b })
                        .collect()
                }
                None => raw,
            };
            for (cat, rows) in &mut per_category {
                if workload.category() == *cat {
                    rows.push(values.clone());
                }
            }
            table.push_row(workload.acronym(), values);
        }
        for (cat, rows) in &per_category {
            if rows.is_empty() {
                continue;
            }
            let cols = self.columns.len();
            let avg: Vec<f64> = (0..cols)
                .map(|c| rows.iter().map(|r| r[c]).sum::<f64>() / rows.len() as f64)
                .collect();
            table.push_row(format!("Avg_{}", cat.acronym()), avg);
        }
        table
    }
}

/// Runs `workloads` x `variants`, where each variant customizes the baseline
/// memory-controller configuration.
fn run_matrix(workloads: &[Workload], variants: &[(String, McTweak)], scale: &Scale) -> Matrix {
    let mut configs = Vec::with_capacity(workloads.len() * variants.len());
    for &w in workloads {
        for (_, customize) in variants {
            let mut cfg = baseline_config(w, scale);
            customize(&mut cfg.mc);
            configs.push(cfg);
        }
    }
    let flat = run_all_with_threads(&configs, scale.threads);
    let mut results = Vec::with_capacity(workloads.len());
    let mut it = flat.into_iter();
    for &w in workloads {
        let mut row = Vec::with_capacity(variants.len());
        for (label, _) in variants {
            let stats = it
                .next()
                .expect("one result per configuration")
                .unwrap_or_else(|e| panic!("{w} / {label}: {e}"));
            row.push(stats);
        }
        results.push(row);
    }
    Matrix {
        workloads: workloads.to_vec(),
        columns: variants.iter().map(|(l, _)| l.clone()).collect(),
        results,
    }
}

/// The five schedulers of Figures 1-7 with Table 3 parameters.
#[must_use]
pub fn paper_schedulers() -> Vec<(String, SchedulerKind)> {
    vec![
        ("FR-FCFS".to_owned(), SchedulerKind::FrFcfs),
        ("FCFS_Banks".to_owned(), SchedulerKind::FcfsBanks),
        (
            "PAR-BS".to_owned(),
            SchedulerKind::ParBs(ParBsConfig::default()),
        ),
        (
            "ATLAS".to_owned(),
            SchedulerKind::Atlas(AtlasConfig::default()),
        ),
        ("RL".to_owned(), SchedulerKind::Rl(RlConfig::default())),
    ]
}

/// Runs the memory-scheduling study (Section 4.1): all 12 workloads under
/// the 5 schedulers. Feeds Figures 1-7.
#[must_use]
pub fn scheduler_study(scale: &Scale) -> Matrix {
    let variants: Vec<(String, McTweak)> = paper_schedulers()
        .into_iter()
        .map(|(label, kind)| {
            let f: McTweak = Box::new(move |mc: &mut McConfig| mc.scheduler = kind);
            (label, f)
        })
        .collect();
    run_matrix(&Workload::all(), &variants, scale)
}

/// Runs the page-management study (Section 4.2): all 12 workloads under the
/// four policies of Figures 9-11.
#[must_use]
pub fn page_policy_study(scale: &Scale) -> Matrix {
    let policies = [
        ("Open Adaptive", PagePolicyKind::OpenAdaptive),
        ("Close Adaptive", PagePolicyKind::CloseAdaptive),
        ("RBPP", PagePolicyKind::Rbpp),
        ("ABPP", PagePolicyKind::Abpp),
    ];
    let variants: Vec<(String, McTweak)> = policies
        .into_iter()
        .map(|(label, kind)| {
            let f: McTweak = Box::new(move |mc: &mut McConfig| mc.page_policy = kind);
            (label.to_owned(), f)
        })
        .collect();
    run_matrix(&Workload::all(), &variants, scale)
}

/// Results of the multi-channel study (Section 4.3).
#[derive(Debug, Clone)]
pub struct ChannelStudy {
    /// Per-workload: baseline 1-channel result.
    pub one_channel: Matrix,
    /// Per-workload best mapping and result for 2 channels.
    pub two_channel: Vec<(Workload, AddressMapping, SimStats)>,
    /// Per-workload best mapping and result for 4 channels.
    pub four_channel: Vec<(Workload, AddressMapping, SimStats)>,
}

impl ChannelStudy {
    fn best_for(
        &self,
        workload: Workload,
        list: &[(Workload, AddressMapping, SimStats)],
    ) -> SimStats {
        list.iter()
            .find(|(w, _, _)| *w == workload)
            .map(|(_, _, s)| s.clone())
            .expect("every workload present")
    }

    /// A matrix view (1/2/4 channels, best mapping per workload) suitable for
    /// the figure tables.
    #[must_use]
    pub fn as_matrix(&self) -> Matrix {
        let workloads = self.one_channel.workloads.clone();
        let results = workloads
            .iter()
            .map(|&w| {
                vec![
                    self.one_channel
                        .get(w, 0)
                        .expect("baseline present")
                        .clone(),
                    self.best_for(w, &self.two_channel),
                    self.best_for(w, &self.four_channel),
                ]
            })
            .collect();
        Matrix {
            workloads,
            columns: vec![
                "1_channel".to_owned(),
                "2_channel".to_owned(),
                "4_channel".to_owned(),
            ],
            results,
        }
    }

    /// Table 4: the best-performing mapping scheme per workload.
    #[must_use]
    pub fn table4(&self) -> TextTable {
        let mut table = TextTable::new(
            "Table 4: Best performing multi-channel mapping scheme per workload",
            vec!["2-channel".to_owned(), "4-channel".to_owned()],
        );
        for &w in &self.one_channel.workloads {
            let two = self
                .two_channel
                .iter()
                .find(|(x, _, _)| *x == w)
                .map(|(_, m, _)| m.to_string())
                .unwrap_or_default();
            let four = self
                .four_channel
                .iter()
                .find(|(x, _, _)| *x == w)
                .map(|(_, m, _)| m.to_string())
                .unwrap_or_default();
            table.push_row(w.acronym(), vec![two, four]);
        }
        table
    }
}

/// Runs the multi-channel study: every workload at 1, 2 and 4 channels, with
/// all four address mappings evaluated at 2 and 4 channels and the best one
/// (by user IPC) reported, as the paper does.
#[must_use]
pub fn channel_study(scale: &Scale) -> ChannelStudy {
    let workloads = Workload::all();
    // Flat config list: [1ch] + [2ch x 4 mappings] + [4ch x 4 mappings] per workload.
    let mut configs = Vec::new();
    for &w in &workloads {
        configs.push(baseline_config(w, scale));
        for channels in [2usize, 4] {
            for mapping in AddressMapping::all() {
                let mut cfg = baseline_config(w, scale);
                cfg.mc.dram.channels = channels;
                cfg.mc.mapping = mapping;
                configs.push(cfg);
            }
        }
    }
    let flat = run_all_with_threads(&configs, scale.threads);
    let mut it = flat.into_iter();
    let mut one_rows = Vec::new();
    let mut two_channel = Vec::new();
    let mut four_channel = Vec::new();
    for &w in &workloads {
        let base = it.next().unwrap().unwrap_or_else(|e| panic!("{w}: {e}"));
        one_rows.push(vec![base]);
        for channels in [2usize, 4] {
            let mut best: Option<(AddressMapping, SimStats)> = None;
            for mapping in AddressMapping::all() {
                let stats = it
                    .next()
                    .unwrap()
                    .unwrap_or_else(|e| panic!("{w} {channels}ch {mapping}: {e}"));
                let better = match &best {
                    Some((_, b)) => stats.user_ipc() > b.user_ipc(),
                    None => true,
                };
                if better {
                    best = Some((mapping, stats));
                }
            }
            let (mapping, stats) = best.expect("four mappings evaluated");
            if channels == 2 {
                two_channel.push((w, mapping, stats));
            } else {
                four_channel.push((w, mapping, stats));
            }
        }
    }
    ChannelStudy {
        one_channel: Matrix {
            workloads: workloads.to_vec(),
            columns: vec!["1_channel".to_owned()],
            results: one_rows,
        },
        two_channel,
        four_channel,
    }
}

/// Runs the baseline configuration for every workload (used for Figure 8 and
/// the characterization table).
#[must_use]
pub fn baseline_study(scale: &Scale) -> Matrix {
    let variants: Vec<(String, McTweak)> =
        vec![("baseline".to_owned(), Box::new(|_: &mut McConfig| {}))];
    run_matrix(&Workload::all(), &variants, scale)
}

// ---------------------------------------------------------------------------
// Figure/table builders
// ---------------------------------------------------------------------------

/// Figure 1: user IPC normalized to FR-FCFS.
#[must_use]
pub fn figure1(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 1: User IPC normalized to FR-FCFS",
        "Higher is better; paper shape: FR-FCFS >= all others, FCFS_Banks within a few % except Web Frontend, ATLAS worst on scale-out.",
        SimStats::user_ipc,
        Some(0),
    )
}

/// Figure 2: row-buffer hit rate (%).
#[must_use]
pub fn figure2(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 2: Row-buffer hit rate (%)",
        "Paper shape: ~30-40% averages under FR-FCFS/open-adaptive; Web Frontend and Media Streaming highest.",
        |s| s.row_buffer_hit_rate * 100.0,
        None,
    )
}

/// Figure 3: average memory access latency normalized to FR-FCFS.
#[must_use]
pub fn figure3(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 3: Average memory access latency normalized to FR-FCFS",
        "Lower is better; paper shape: ATLAS suffers the largest increases (up to several x on MapReduce).",
        |s| s.avg_read_latency_dram,
        Some(0),
    )
}

/// Figure 4: L2 misses per kilo user instructions.
#[must_use]
pub fn figure4(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 4: L2 MPKI (misses per kilo user instructions)",
        "Paper shape: SCOW avg ~5, TRSW ~8, DSPW ~18.",
        |s| s.l2_mpki,
        None,
    )
}

/// Figure 5: average read queue length.
#[must_use]
pub fn figure5(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 5: Average read queue length",
        "Paper shape: below 10 entries everywhere; DSPW higher than SCOW.",
        |s| s.avg_read_queue_len,
        None,
    )
}

/// Figure 6: average write queue length.
#[must_use]
pub fn figure6(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 6: Average write queue length",
        "Paper shape: below 50 entries; RL noticeably lower than the others.",
        |s| s.avg_write_queue_len,
        None,
    )
}

/// Figure 7: memory bandwidth utilization (%).
#[must_use]
pub fn figure7(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 7: Memory bandwidth utilization (%)",
        "Paper shape: SCOW 14-50% (avg ~34%), DSPW avg ~54%.",
        |s| s.bandwidth_utilization * 100.0,
        None,
    )
}

/// Figure 8: percentage of row activations with exactly one access, under the
/// baseline open-adaptive policy.
#[must_use]
pub fn figure8(baseline: &Matrix) -> Table {
    baseline.metric_table(
        "Figure 8: Single-access row-buffer activations under open-adaptive (%)",
        "Paper shape: 77%-90% across workloads (Media Streaming lowest at ~76%).",
        |s| s.single_access_activation_fraction * 100.0,
        None,
    )
}

/// Figure 9: row-buffer hit rate per page policy, normalized to open-adaptive.
#[must_use]
pub fn figure9(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 9: Row-buffer hit rate normalized to open-adaptive",
        "Paper shape: close-adaptive loses most hits; RBPP preserves ~70-86%, ABPP less.",
        |s| s.row_buffer_hit_rate,
        Some(0),
    )
}

/// Figure 10: average memory access latency per page policy, normalized to
/// open-adaptive.
#[must_use]
pub fn figure10(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 10: Average memory access latency normalized to open-adaptive",
        "Paper shape: close-adaptive reduces latency for DSPW (~-13%) but raises it for Web Frontend/Media Streaming (~+15%).",
        |s| s.avg_read_latency_dram,
        Some(0),
    )
}

/// Figure 11: user IPC per page policy, normalized to open-adaptive.
#[must_use]
pub fn figure11(study: &Matrix) -> Table {
    study.metric_table(
        "Figure 11: User IPC normalized to open-adaptive",
        "Paper shape: close-adaptive -2.5% on SCOW / +4% on DSPW; RBPP/ABPP roughly at or slightly below open-adaptive on SCOW, RBPP +3% on DSPW.",
        SimStats::user_ipc,
        Some(0),
    )
}

/// Figure 12: user IPC as the number of channels increases (best mapping per
/// workload), normalized to one channel.
#[must_use]
pub fn figure12(study: &ChannelStudy) -> Table {
    study.as_matrix().metric_table(
        "Figure 12: User IPC vs. memory channels (normalized to 1 channel)",
        "Paper shape: SCOW ~+1.7% at 4 channels, DSPW ~+19%; Web Frontend degrades.",
        SimStats::user_ipc,
        Some(0),
    )
}

/// Figure 13: row-buffer hit rate as the number of channels increases,
/// normalized to one channel.
#[must_use]
pub fn figure13(study: &ChannelStudy) -> Table {
    study.as_matrix().metric_table(
        "Figure 13: Row-buffer hit rate vs. memory channels (normalized to 1 channel)",
        "Paper shape: increases ~1.3x/1.6x (SCOW, TRSW) and ~1.7x/2.3x (DSPW) at 2/4 channels.",
        |s| s.row_buffer_hit_rate,
        Some(0),
    )
}

/// Figure 14: average memory access latency as the number of channels
/// increases, normalized to one channel.
#[must_use]
pub fn figure14(study: &ChannelStudy) -> Table {
    study.as_matrix().metric_table(
        "Figure 14: Memory access latency vs. memory channels (normalized to 1 channel)",
        "Paper shape: drops to ~0.8/0.7 for SCOW and ~0.64/0.47 for DSPW at 2/4 channels.",
        |s| s.avg_read_latency_dram,
        Some(0),
    )
}

/// Tables 2 and 3: the baseline system and scheduler configurations, printed
/// from the actual structures used by the simulator.
#[must_use]
pub fn config_report() -> String {
    let mc = McConfig::baseline();
    let t = mc.dram.timing;
    let mut out = String::new();
    out.push_str("# Table 2: Baseline system configuration\n");
    out.push_str("CMP organization      16-core scale-out pod (in-order cores @ 2 GHz)\n");
    out.push_str("L1 I/D caches         32 KB each, 64 B blocks, 2-way\n");
    out.push_str("Shared L2             4 MB, 16-way, 64 B blocks, 4 banks\n");
    out.push_str(&format!(
        "Memory controller     {} scheduling, {} page policy, {}-channel, {} mapping\n",
        mc.scheduler.label(),
        mc.page_policy,
        mc.dram.channels,
        mc.mapping
    ));
    out.push_str(&format!(
        "Off-chip DRAM         DDR3-1600, {} ranks, {} banks/rank, {} KB row buffer\n",
        mc.dram.ranks_per_channel,
        mc.dram.banks_per_rank,
        mc.dram.row_bytes / 1024
    ));
    out.push_str(&format!(
        "tCAS-tRCD-tRP-tRAS    {}-{}-{}-{}\n",
        t.cl, t.t_rcd, t.t_rp, t.t_ras
    ));
    out.push_str(&format!(
        "tRC-tWR-tWTR-tRTP     {}-{}-{}-{}\n",
        t.t_rc, t.t_wr, t.t_wtr, t.t_rtp
    ));
    out.push_str(&format!("tRRD-tFAW             {}-{}\n", t.t_rrd, t.t_faw));
    out.push('\n');
    out.push_str("# Table 3: Scheduling algorithm configurations\n");
    let parbs = ParBsConfig::default();
    out.push_str(&format!("PAR-BS   batching cap = {}\n", parbs.batching_cap));
    let atlas = AtlasConfig::default();
    out.push_str(&format!(
        "ATLAS    quantum = {} cycles, alpha = {}, starvation threshold = {} cycles\n",
        atlas.quantum, atlas.alpha, atlas.starvation_threshold
    ));
    let rl = RlConfig::default();
    out.push_str(&format!(
        "RL       {} Q-tables x {} entries, alpha = {}, gamma = {}, epsilon = {}, starvation threshold = {} cycles\n",
        rl.num_tables, rl.table_size, rl.alpha, rl.gamma, rl.epsilon, rl.starvation_threshold
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            warmup_cpu_cycles: 2_000,
            measure_cpu_cycles: 15_000,
            seed: 1,
            threads: cloudmc_sim::default_threads(),
        }
    }

    #[test]
    fn scheduler_study_produces_full_matrix_on_subset() {
        // Use a reduced workload list through run_matrix directly to keep the
        // test fast; the full sweep is exercised by the repro binary.
        let variants: Vec<(String, McTweak)> = vec![
            (
                "FR-FCFS".to_owned(),
                Box::new(|mc: &mut McConfig| {
                    mc.scheduler = SchedulerKind::FrFcfs;
                }),
            ),
            (
                "FCFS_Banks".to_owned(),
                Box::new(|mc: &mut McConfig| {
                    mc.scheduler = SchedulerKind::FcfsBanks;
                }),
            ),
        ];
        let matrix = run_matrix(
            &[Workload::WebSearch, Workload::TpchQ6],
            &variants,
            &tiny_scale(),
        );
        assert_eq!(matrix.workloads.len(), 2);
        assert_eq!(matrix.columns, vec!["FR-FCFS", "FCFS_Banks"]);
        assert!(matrix.get(Workload::WebSearch, 0).unwrap().user_ipc() > 0.0);
        let table = matrix.metric_table("t", "", SimStats::user_ipc, Some(0));
        // Normalized baseline column is exactly 1.0 for workload rows.
        assert!((table.value("WS", "FR-FCFS").unwrap() - 1.0).abs() < 1e-9);
        // Category averages exist for the categories present.
        assert!(table.value("Avg_SCO", "FR-FCFS").is_some());
        assert!(table.value("Avg_DSP", "FCFS_Banks").is_some());
        assert!(table.value("Avg_TRS", "FR-FCFS").is_none());
    }

    #[test]
    fn paper_schedulers_cover_table3() {
        let s = paper_schedulers();
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].1.label(), "FR-FCFS");
        assert!(s.iter().any(|(_, k)| matches!(k, SchedulerKind::Rl(_))));
    }

    #[test]
    fn config_report_mentions_table2_timings() {
        let report = config_report();
        assert!(report.contains("11-11-11-28"));
        assert!(report.contains("39-12-6-6"));
        assert!(report.contains("5-24"));
        assert!(report.contains("batching cap = 5"));
        assert!(report.contains("0.875"));
    }

    #[test]
    fn figure_builders_render_from_small_matrices() {
        let variants: Vec<(String, McTweak)> =
            vec![("baseline".to_owned(), Box::new(|_: &mut McConfig| {}))];
        let matrix = run_matrix(&[Workload::MediaStreaming], &variants, &tiny_scale());
        let fig8 = figure8(&matrix);
        let value = fig8.value("MS", "baseline").unwrap();
        assert!((0.0..=100.0).contains(&value));
        assert!(fig8.to_text().contains("Figure 8"));
        assert!(!fig8.to_csv().is_empty());
    }
}
