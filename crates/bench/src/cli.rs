//! The `repro` binary's command line, parsed in one place.
//!
//! Every experiment handler used to re-read the same flags out of a shared
//! ad-hoc loop inside the binary; this module owns the full grammar — the
//! experiment word, the run-length preset, the per-run overrides, and the
//! sweep orchestrator's flags — so the binary and the tests exercise exactly
//! one parser. Error strings are part of the CLI contract
//! (`crates/bench/tests/repro_cli.rs` asserts them verbatim).

use std::path::PathBuf;

use crate::experiments::Scale;
use crate::sweep::SweepOptions;

/// Usage string printed by `--help` and after any parse error.
pub const HELP: &str = "usage: repro \
<config|fig1..fig14|table4|sched|pages|channels|fastforward|energy|qos|reliability|trace|telemetry|sweep|lint|all> \
[--quick|--full] [--measure N] [--warmup N] [--seed N] [--threads N] [--csv DIR] \
[--golden-regen] [--git-describe STR] \
[--replicates N] [--workloads N] [--schedulers N] [--max-cells N] [--resume-dir DIR]";

/// Every experiment word the binary accepts.
pub const EXPERIMENTS: &[&str] = &[
    "config",
    "all",
    "sched",
    "pages",
    "channels",
    "table4",
    "fastforward",
    "energy",
    "qos",
    "reliability",
    "trace",
    "telemetry",
    "sweep",
    "lint",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
];

/// The fully parsed command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// The experiment word (validated against [`EXPERIMENTS`]).
    pub experiment: String,
    /// Run-length preset with any overrides applied.
    pub scale: Scale,
    /// Preset name for the report `meta` block: `quick`/`standard`/`full`,
    /// plus `+overrides` when an override flag changed the preset.
    pub scale_label: String,
    /// Directory for CSV copies of each table, if requested.
    pub csv_dir: Option<PathBuf>,
    /// Whether `trace` regenerates the golden trace fixture.
    pub golden_regen: bool,
    /// Workspace `git describe` string for the report `meta` block.
    pub git_describe: Option<String>,
    /// Sweep orchestrator settings (grid size, resume directory, cell cap).
    pub sweep: SweepOptions,
}

/// What a successful parse asks the binary to do.
#[derive(Debug, Clone)]
pub enum Parsed {
    /// Run the experiment described by the options.
    Run(Box<Options>),
    /// Print [`HELP`] and exit successfully (`--help`/`-h`).
    Help,
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns the diagnostic to print (the binary appends [`HELP`]): unknown
/// experiments, unknown flags, flags missing their value, and unparseable
/// values.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Parsed, String> {
    let mut args = args.into_iter();
    // `repro --help` (no experiment) must print usage, not run "--help".
    let experiment = match args.next() {
        Some(first) if first == "--help" || first == "-h" => return Ok(Parsed::Help),
        Some(first) => first,
        None => "all".to_owned(),
    };
    if !EXPERIMENTS.contains(&experiment.as_str()) {
        return Err(format!("unknown experiment `{experiment}`"));
    }
    let mut scale = Scale::standard();
    let mut preset = "standard";
    let mut overridden = false;
    let mut csv_dir = None;
    let mut golden_regen = false;
    let mut git_describe = None;
    let mut sweep = SweepOptions::default();
    while let Some(arg) = args.next() {
        // One helper for every `--flag <value>` pair: the "needs a value" and
        // "bad value" diagnostics are part of the CLI contract.
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => {
                scale = Scale::quick();
                preset = "quick";
            }
            "--full" => {
                scale = Scale::full();
                preset = "full";
            }
            "--golden-regen" => golden_regen = true,
            "--measure" => {
                scale.measure_cpu_cycles = parse_value(&value("--measure")?, "--measure")?;
                overridden = true;
            }
            "--warmup" => {
                scale.warmup_cpu_cycles = parse_value(&value("--warmup")?, "--warmup")?;
                overridden = true;
            }
            "--seed" => {
                scale.seed = parse_value(&value("--seed")?, "--seed")?;
                overridden = true;
            }
            "--threads" => {
                scale.threads = parse_value(&value("--threads")?, "--threads")?;
                overridden = true;
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().ok_or("--csv needs a directory")?));
            }
            "--git-describe" => git_describe = Some(value("--git-describe")?),
            "--replicates" => {
                sweep.replicates = parse_value(&value("--replicates")?, "--replicates")?;
                if sweep.replicates == 0 {
                    return Err("--replicates must be at least 1".to_owned());
                }
            }
            "--workloads" => {
                sweep.workloads = parse_value(&value("--workloads")?, "--workloads")?;
                if sweep.workloads == 0 {
                    return Err("--workloads must be at least 1".to_owned());
                }
            }
            "--schedulers" => {
                sweep.schedulers = parse_value(&value("--schedulers")?, "--schedulers")?;
                if sweep.schedulers == 0 {
                    return Err("--schedulers must be at least 1".to_owned());
                }
            }
            "--max-cells" => {
                sweep.max_new_cells = Some(parse_value(&value("--max-cells")?, "--max-cells")?);
            }
            "--resume-dir" => {
                sweep.resume_dir = PathBuf::from(args.next().ok_or("--resume-dir needs a value")?);
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    let scale_label = if overridden {
        format!("{preset}+overrides")
    } else {
        preset.to_owned()
    };
    Ok(Parsed::Run(Box::new(Options {
        experiment,
        scale,
        scale_label,
        csv_dir,
        golden_regen,
        git_describe,
        sweep,
    })))
}

/// Parses one numeric flag value with the contract diagnostic.
fn parse_value<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("bad {flag} value: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<Parsed, String> {
        parse(args.iter().map(|s| (*s).to_owned()))
    }

    fn options(args: &[&str]) -> Options {
        match run(args).expect("parse") {
            Parsed::Run(o) => *o,
            Parsed::Help => panic!("expected a run, got help"),
        }
    }

    #[test]
    fn defaults_to_all_at_standard_scale() {
        let o = options(&[]);
        assert_eq!(o.experiment, "all");
        assert_eq!(o.scale_label, "standard");
        assert_eq!(o.scale.seed, Scale::standard().seed);
    }

    #[test]
    fn presets_and_overrides_shape_the_scale_label() {
        assert_eq!(options(&["sched", "--quick"]).scale_label, "quick");
        let o = options(&["sched", "--quick", "--seed", "9"]);
        assert_eq!(o.scale_label, "quick+overrides");
        assert_eq!(o.scale.seed, 9);
    }

    #[test]
    fn unknown_experiment_and_flags_fail_with_contract_strings() {
        assert_eq!(
            run(&["frobnicate"]).unwrap_err(),
            "unknown experiment `frobnicate`"
        );
        assert_eq!(
            run(&["config", "--bogus-flag"]).unwrap_err(),
            "unknown option `--bogus-flag` (try --help)"
        );
        assert_eq!(
            run(&["config", "--measure"]).unwrap_err(),
            "--measure needs a value"
        );
        assert!(run(&["config", "--seed", "banana"])
            .unwrap_err()
            .starts_with("bad --seed value"));
    }

    #[test]
    fn help_short_circuits_even_with_no_experiment() {
        assert!(matches!(run(&["--help"]), Ok(Parsed::Help)));
        assert!(matches!(run(&["sweep", "-h"]), Ok(Parsed::Help)));
    }

    #[test]
    fn sweep_flags_parse_and_validate() {
        let o = options(&[
            "sweep",
            "--replicates",
            "2",
            "--workloads",
            "2",
            "--schedulers",
            "2",
            "--max-cells",
            "3",
            "--resume-dir",
            "cells",
            "--git-describe",
            "v0.2.0-g123",
        ]);
        assert_eq!(o.sweep.replicates, 2);
        assert_eq!(o.sweep.workloads, 2);
        assert_eq!(o.sweep.schedulers, 2);
        assert_eq!(o.sweep.max_new_cells, Some(3));
        assert_eq!(o.sweep.resume_dir, PathBuf::from("cells"));
        assert_eq!(o.git_describe.as_deref(), Some("v0.2.0-g123"));
        assert_eq!(
            run(&["sweep", "--replicates", "0"]).unwrap_err(),
            "--replicates must be at least 1"
        );
    }
}
