//! The energy experiment: does the cheapest-to-build policy also burn the
//! least power?
//!
//! The paper conjectures (Section 5) that the simplest scheduling and page
//! policies would also be the cheapest, but defers the measurement to future
//! work. This experiment runs it: all five paper schedulers crossed with the
//! four paper page policies and every rank power-management policy, on two
//! workload extremes — an idle-heavy stream (Web Search throttled to 2% of
//! its off-chip rate, the utilization cloud services actually sit at most of
//! the day) and the dense TPC-H Q6 scan. `repro energy` serializes the
//! result as `BENCH_energy.json`.

use cloudmc_memctrl::{PagePolicyKind, PowerPolicyKind};
use cloudmc_sim::{mean, run_all_with_threads, SimStats, SystemConfig};

use crate::experiments::{paper_schedulers, Scale};
use crate::fastforward::{dense_config, idle_heavy_config};

/// One point of the sweep: a (workload, scheduler, page, power) combination.
#[derive(Debug, Clone)]
pub struct EnergyPoint {
    /// Workload label (`idle_heavy`, `tpch_q6`).
    pub workload: &'static str,
    /// Full measured statistics, including the energy fields.
    pub stats: SimStats,
}

/// Results of the full energy sweep.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// One point per configuration, in sweep order.
    pub points: Vec<EnergyPoint>,
}

/// The two workload extremes of the sweep as (label, config) pairs.
fn workload_configs(scale: &Scale) -> [(&'static str, SystemConfig); 2] {
    [
        ("idle_heavy", idle_heavy_config(scale)),
        ("tpch_q6", dense_config(scale)),
    ]
}

/// Runs the energy sweep: 2 workloads x 5 schedulers x 4 page policies x
/// every power policy.
#[must_use]
pub fn energy_study(scale: &Scale) -> EnergyReport {
    let schedulers = paper_schedulers();
    let mut configs = Vec::new();
    let mut labels = Vec::new();
    for (workload, base) in workload_configs(scale) {
        for (_, scheduler) in &schedulers {
            for page in PagePolicyKind::paper_set() {
                for power in PowerPolicyKind::all() {
                    let mut cfg = base.clone();
                    cfg.mc.scheduler = *scheduler;
                    cfg.mc.page_policy = page;
                    cfg.mc.power_policy = power;
                    configs.push(cfg);
                    labels.push(workload);
                }
            }
        }
    }
    let results = run_all_with_threads(&configs, scale.threads);
    let points = labels
        .into_iter()
        .zip(results)
        .map(|(workload, result)| EnergyPoint {
            workload,
            stats: result.unwrap_or_else(|e| panic!("{workload}: {e}")),
        })
        .collect();
    EnergyReport { points }
}

impl EnergyReport {
    /// Points for one workload and power policy.
    fn select(&self, workload: &str, power: &str) -> impl Iterator<Item = &EnergyPoint> {
        let power = power.to_owned();
        let workload = workload.to_owned();
        self.points
            .iter()
            .filter(move |p| p.workload == workload && p.stats.power_policy == power)
    }

    /// Mean background energy (mJ) over all scheduler/page combinations of
    /// one workload under one power policy.
    #[must_use]
    pub fn mean_background_energy_mj(&self, workload: &str, power: &str) -> f64 {
        mean(
            self.select(workload, power)
                .map(|p| p.stats.dram_background_energy_mj),
        )
    }

    /// Mean total energy (mJ) for one workload under one power policy.
    #[must_use]
    pub fn mean_energy_mj(&self, workload: &str, power: &str) -> f64 {
        mean(self.select(workload, power).map(|p| p.stats.dram_energy_mj))
    }

    /// Mean average read latency (DRAM cycles) for one workload under one
    /// power policy.
    #[must_use]
    pub fn mean_read_latency(&self, workload: &str, power: &str) -> f64 {
        mean(
            self.select(workload, power)
                .map(|p| p.stats.avg_read_latency_dram),
        )
    }

    /// Machine-readable JSON for `BENCH_energy.json`: a summary block per
    /// (workload, power policy) plus every raw point.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"dram_energy\",\n");
        out.push_str("  \"unit\": \"millijoules_per_measurement_window\",\n");
        out.push_str("  \"summary\": [\n");
        let workloads = ["idle_heavy", "tpch_q6"];
        let mut first = true;
        for workload in workloads {
            for power in PowerPolicyKind::all() {
                let power = power.to_string();
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&format!(
                    "    {{\"workload\": \"{workload}\", \"power_policy\": \"{power}\", \
                     \"mean_energy_mj\": {:.6}, \"mean_background_energy_mj\": {:.6}, \
                     \"mean_read_latency_dram\": {:.3}}}",
                    self.mean_energy_mj(workload, &power),
                    self.mean_background_energy_mj(workload, &power),
                    self.mean_read_latency(workload, &power),
                ));
            }
        }
        out.push_str("\n  ],\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"stats\": {}}}{}\n",
                p.workload,
                p.stats.to_json(),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary for the terminal: per workload and power
    /// policy, averaged over the scheduler x page-policy grid.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "DRAM energy by power policy (mean over 5 schedulers x 4 page policies)\n",
        );
        for workload in ["idle_heavy", "tpch_q6"] {
            out.push_str(&format!(
                "\n{workload}\n{:<14} {:>12} {:>14} {:>12} {:>12} {:>10}\n",
                "power policy",
                "energy(mJ)",
                "background(mJ)",
                "power(mW)",
                "latency(cy)",
                "PD resid%"
            ));
            for power in PowerPolicyKind::all() {
                let power = power.to_string();
                let pd = mean(
                    self.select(workload, &power)
                        .map(|p| p.stats.power_down_fraction),
                );
                let mw = mean(
                    self.select(workload, &power)
                        .map(|p| p.stats.avg_dram_power_mw),
                );
                out.push_str(&format!(
                    "{:<14} {:>12.3} {:>14.3} {:>12.1} {:>12.1} {:>10.1}\n",
                    power,
                    self.mean_energy_mj(workload, &power),
                    self.mean_background_energy_mj(workload, &power),
                    mw,
                    self.mean_read_latency(workload, &power),
                    pd * 100.0,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_study_shows_background_savings_on_idle_workload() {
        let scale = Scale {
            warmup_cpu_cycles: 2_000,
            measure_cpu_cycles: 30_000,
            seed: 1,
            threads: cloudmc_sim::default_threads(),
        };
        let report = energy_study(&scale);
        // 2 workloads x 5 schedulers x 4 page policies x 4 power policies.
        assert_eq!(report.points.len(), 160);
        for power in ["immediate", "idle-timer", "power-aware"] {
            let with = report.mean_background_energy_mj("idle_heavy", power);
            let without = report.mean_background_energy_mj("idle_heavy", "none");
            assert!(
                with < without,
                "{power}: background energy {with} must undercut none {without}"
            );
        }
        // Power-down is a latency trade: the dense stream must still finish
        // with sane latencies under every policy.
        for power in PowerPolicyKind::all() {
            let lat = report.mean_read_latency("tpch_q6", &power.to_string());
            assert!(lat > 0.0, "{power}: dense stream must complete reads");
        }
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"dram_energy\""));
        assert!(json.contains("\"summary\""));
        assert!(json.contains("\"power_policy\": \"idle-timer\""));
        assert!(report.to_text().contains("power policy"));
    }
}
