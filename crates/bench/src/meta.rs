//! Provenance metadata stamped into every `BENCH_*.json` report.
//!
//! Benchmark numbers are only comparable when the run conditions are known,
//! so every report carries a `meta` block recording the host parallelism,
//! the cargo profile the harness was compiled under, the workspace version
//! (a `git describe` string passed in by the caller — the harness never
//! shells out to `git` itself), and which run-length preset produced the
//! numbers.

/// Environment variable through which CI (or a developer) passes the
/// workspace `git describe` string; the `--git-describe` flag overrides it.
pub const GIT_DESCRIBE_ENV: &str = "REPRO_GIT_DESCRIBE";

/// The provenance block every `BENCH_*.json` report is stamped with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Hardware threads available on the host that produced the numbers.
    pub host_nproc: usize,
    /// Cargo profile the harness was compiled under (`release` or `debug`).
    pub cargo_profile: &'static str,
    /// Workspace `git describe` string, as passed in via `--git-describe`
    /// or [`GIT_DESCRIBE_ENV`]; `unknown` when neither is set.
    pub git_describe: String,
    /// The run-length preset (`quick`, `standard`, `full`), suffixed with
    /// `+overrides` when `--measure`/`--warmup`/`--seed`/`--threads`
    /// deviated from the preset.
    pub scale: String,
}

impl RunMeta {
    /// Collects the metadata for a run at `scale`. `scale_label` is the
    /// preset name the CLI resolved (including any `+overrides` marker);
    /// `git_describe` is the explicit flag value, falling back to
    /// [`GIT_DESCRIBE_ENV`] and then `unknown`.
    #[must_use]
    pub fn collect(scale_label: &str, git_describe: Option<&str>) -> Self {
        Self {
            host_nproc: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cargo_profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
            git_describe: git_describe
                .map(str::to_owned)
                .or_else(|| std::env::var(GIT_DESCRIBE_ENV).ok())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_owned()),
            scale: scale_label.to_owned(),
        }
    }

    /// The `"meta": {...}` JSON object (no trailing comma or newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "\"meta\": {{\"host_nproc\": {}, \"cargo_profile\": \"{}\", \
             \"git_describe\": \"{}\", \"scale\": \"{}\"}}",
            self.host_nproc,
            self.cargo_profile,
            self.git_describe.replace('\\', "\\\\").replace('"', "\\\""),
            self.scale.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }
}

/// Splices the `meta` block into a report's JSON, right after the opening
/// brace, so every `BENCH_*.json` writer stamps provenance uniformly without
/// each report type knowing about [`RunMeta`].
///
/// # Panics
///
/// Panics if `json` is not an object (no `{`) — every report serializer in
/// this crate emits an object.
#[must_use]
pub fn with_meta(json: &str, meta: &RunMeta) -> String {
    let brace = json.find('{').expect("report JSON must be an object");
    let mut out = String::with_capacity(json.len() + 128);
    out.push_str(&json[..=brace]);
    out.push_str("\n  ");
    out.push_str(&meta.to_json());
    out.push(',');
    out.push_str(&json[brace + 1..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_fills_every_field() {
        let meta = RunMeta::collect("standard", Some("v0.2.0-12-gabcdef"));
        assert!(meta.host_nproc >= 1);
        assert!(meta.cargo_profile == "debug" || meta.cargo_profile == "release");
        assert_eq!(meta.git_describe, "v0.2.0-12-gabcdef");
        assert_eq!(meta.scale, "standard");
    }

    #[test]
    fn explicit_flag_beats_environment_and_absence_means_unknown() {
        let explicit = RunMeta::collect("quick", Some("explicit"));
        assert_eq!(explicit.git_describe, "explicit");
        // Absent flag and (in the test environment) unset variable.
        if std::env::var(GIT_DESCRIBE_ENV).is_err() {
            let fallback = RunMeta::collect("quick", None);
            assert_eq!(fallback.git_describe, "unknown");
        }
    }

    #[test]
    fn with_meta_splices_after_the_opening_brace() {
        let meta = RunMeta::collect("quick", Some("v1"));
        let stamped = with_meta("{\n  \"benchmark\": \"x\",\n  \"points\": []\n}\n", &meta);
        assert!(stamped.starts_with("{\n  \"meta\": {"));
        assert!(stamped.contains("\"git_describe\": \"v1\""));
        assert!(stamped.contains("\"benchmark\": \"x\""));
        // Still exactly one meta block and balanced braces.
        assert_eq!(stamped.matches("\"meta\"").count(), 1);
        assert_eq!(
            stamped.matches('{').count(),
            stamped.matches('}').count(),
            "braces must stay balanced: {stamped}"
        );
    }

    #[test]
    fn quotes_in_describe_strings_are_escaped() {
        let mut meta = RunMeta::collect("quick", Some("v1"));
        meta.git_describe = "weird\"tag".to_owned();
        assert!(meta.to_json().contains("weird\\\"tag"));
    }
}
