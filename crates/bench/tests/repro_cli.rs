//! CLI contract of the `repro` binary: bad invocations must exit non-zero
//! and print usage, instead of silently running nothing (or everything).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = repro()
        .arg("frobnicate")
        .output()
        .expect("spawn repro binary");
    assert!(
        !out.status.success(),
        "unknown experiment must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment `frobnicate`"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
}

#[test]
fn malformed_flag_fails_with_usage() {
    let out = repro()
        .args(["config", "--bogus-flag"])
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success(), "malformed flag must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown option `--bogus-flag`"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
}

#[test]
fn flag_missing_its_value_fails() {
    let out = repro()
        .args(["config", "--measure"])
        .output()
        .expect("spawn repro binary");
    assert!(
        !out.status.success(),
        "dangling --measure must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--measure needs a value"),
        "stderr: {stderr}"
    );
}

#[test]
fn non_numeric_flag_value_fails() {
    let out = repro()
        .args(["config", "--seed", "banana"])
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success(), "bad --seed must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --seed value"), "stderr: {stderr}");
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = repro().arg("--help").output().expect("spawn repro binary");
    assert!(out.status.success(), "--help must exit zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: repro"), "stdout: {stdout}");
    assert!(stdout.contains("reliability"), "stdout: {stdout}");
}
