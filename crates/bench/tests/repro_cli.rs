//! CLI contract of the `repro` binary: bad invocations must exit non-zero
//! and print usage, instead of silently running nothing (or everything).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = repro()
        .arg("frobnicate")
        .output()
        .expect("spawn repro binary");
    assert!(
        !out.status.success(),
        "unknown experiment must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment `frobnicate`"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
}

#[test]
fn malformed_flag_fails_with_usage() {
    let out = repro()
        .args(["config", "--bogus-flag"])
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success(), "malformed flag must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown option `--bogus-flag`"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
}

#[test]
fn flag_missing_its_value_fails() {
    let out = repro()
        .args(["config", "--measure"])
        .output()
        .expect("spawn repro binary");
    assert!(
        !out.status.success(),
        "dangling --measure must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--measure needs a value"),
        "stderr: {stderr}"
    );
}

#[test]
fn non_numeric_flag_value_fails() {
    let out = repro()
        .args(["config", "--seed", "banana"])
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success(), "bad --seed must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --seed value"), "stderr: {stderr}");
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = repro().arg("--help").output().expect("spawn repro binary");
    assert!(out.status.success(), "--help must exit zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: repro"), "stdout: {stdout}");
    assert!(stdout.contains("reliability"), "stdout: {stdout}");
    assert!(stdout.contains("telemetry"), "stdout: {stdout}");
    assert!(stdout.contains("sweep"), "stdout: {stdout}");
    assert!(stdout.contains("--resume-dir"), "stdout: {stdout}");
}

#[test]
fn zero_sweep_replicates_fail() {
    let out = repro()
        .args(["sweep", "--replicates", "0"])
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success(), "zero replicates must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--replicates must be at least 1"),
        "stderr: {stderr}"
    );
}

/// End-to-end sweep contract: a `--max-cells`-capped run stops early without
/// writing a report, the resumed run completes from the cached cells, and
/// the report carries the identity gate plus the provenance `meta` block.
#[test]
fn mini_sweep_stops_resumes_and_stamps_meta() {
    let dir = std::env::temp_dir().join("cloudmc_repro_cli_sweep");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create sweep scratch dir");
    let resume = dir.join("cells");
    let sweep_args = [
        "sweep",
        "--quick",
        "--warmup",
        "4000",
        "--workloads",
        "1",
        "--schedulers",
        "2",
        "--replicates",
        "2",
        "--threads",
        "2",
        "--git-describe",
        "test-run",
        "--resume-dir",
    ];

    // First run: capped after one fresh cell — the deterministic stand-in
    // for a sweep killed mid-flight.
    let out = repro()
        .current_dir(&dir)
        .args(sweep_args)
        .arg(&resume)
        .args(["--max-cells", "1"])
        .output()
        .expect("spawn repro binary");
    assert!(out.status.success(), "capped sweep must exit zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sweep stopped after 1 new cells"),
        "stderr: {stderr}"
    );
    assert!(
        !dir.join("BENCH_sweep.json").exists(),
        "a stopped sweep must not write a report"
    );
    let cached = std::fs::read_dir(&resume).expect("resume dir").count();
    assert_eq!(cached, 1, "one cell must be persisted for resume");

    // Second run: resumes from the cached cell and completes.
    let out = repro()
        .current_dir(&dir)
        .args(sweep_args)
        .arg(&resume)
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "resumed sweep must exit zero; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cells/minute"), "stdout: {stdout}");
    let json = std::fs::read_to_string(dir.join("BENCH_sweep.json")).expect("BENCH_sweep.json");
    assert!(
        json.contains("\"modes_bit_identical\": true"),
        "report must carry the identity gate: {json}"
    );
    assert!(
        json.contains("\"forked_cells_from_cache\": 1"),
        "report must account the resumed cell: {json}"
    );
    assert!(
        json.contains("\"git_describe\": \"test-run\"") && json.contains("\"host_nproc\""),
        "report must carry the meta block: {json}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// An unwritable `BENCH_*.json` path must produce the typed diagnostic and a
/// failure exit code, not a panic — the experiment's stdout output still
/// prints first. A directory squatting on the report filename forces the
/// `std::fs::write` error deterministically.
#[test]
fn unwritable_report_path_fails_cleanly() {
    let dir = std::env::temp_dir().join("cloudmc_repro_cli_unwritable");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("BENCH_trace.json")).expect("create blocking directory");
    let out = repro()
        .current_dir(&dir)
        .args(["trace", "--quick", "--warmup", "2000", "--measure", "8000"])
        .output()
        .expect("spawn repro binary");
    assert!(
        !out.status.success(),
        "unwritable report path must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: cannot write BENCH_trace.json"),
        "stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must fail via the typed diagnostic, not a panic: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every `BENCH_*.json` writer stamps the provenance block, not just sweep.
/// (`trace` has no timing-sensitive regression gate, so it is safe to run at
/// tiny scale in a debug binary.)
#[test]
fn trace_report_carries_meta_block() {
    let dir = std::env::temp_dir().join("cloudmc_repro_cli_meta");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = repro()
        .current_dir(&dir)
        .args([
            "trace",
            "--quick",
            "--warmup",
            "2000",
            "--measure",
            "8000",
            "--git-describe",
            "meta-test",
        ])
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "trace must exit zero; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_trace.json")).expect("BENCH_trace");
    assert!(
        json.contains("\"meta\": {") && json.contains("\"git_describe\": \"meta-test\""),
        "report must carry the meta block: {json}"
    );
    assert!(
        json.contains("\"scale\": \"quick+overrides\""),
        "overridden preset must be labelled: {json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_smoke_passes_on_the_clean_workspace() {
    let out = repro().arg("lint").output().expect("spawn repro binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "`repro lint` must pass on the clean tree; stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("0 violation(s)"),
        "summary line expected: {stdout}"
    );
}
