//! Per-rank timing bookkeeping (tRRD, tFAW, write-to-read turnaround,
//! refresh) and the rank's CKE power-state machine (standby, fast- and
//! slow-exit power-down, self-refresh) with cycle-accurate state-residency
//! accounting.

use std::collections::VecDeque;

use crate::bank::Bank;
use crate::timing::{DramCycles, TimingParams};

/// The CKE-level power state of one rank.
///
/// Standby states are derived from the row-buffer state (any open row means
/// active standby); the low-power states are entered and exited explicitly by
/// the memory controller's power-management policy. Only *precharge*
/// power-down is modeled: a rank must have all banks closed before CKE drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// CKE high, at least one bank has an open row.
    ActiveStandby,
    /// CKE high, all banks precharged.
    PrechargeStandby,
    /// CKE low, DLL running: cheap to exit (`tXP`).
    PowerDownFast,
    /// CKE low, DLL frozen: cheaper to hold, slower to exit (`tXPDLL`).
    PowerDownSlow,
    /// CKE low, on-die refresh engine running: deepest state, `tXS` to exit,
    /// but the external refresh obligation is suspended.
    SelfRefresh,
}

impl PowerState {
    /// Whether CKE is low (the rank cannot accept commands).
    #[must_use]
    pub fn is_powered_down(&self) -> bool {
        matches!(
            self,
            Self::PowerDownFast | Self::PowerDownSlow | Self::SelfRefresh
        )
    }
}

/// The low-power state a controller-initiated power-down entry targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDownMode {
    /// Fast-exit precharge power-down.
    Fast,
    /// Slow-exit (DLL-off) precharge power-down.
    Slow,
    /// Self-refresh.
    SelfRefresh,
}

impl PowerDownMode {
    fn target(self) -> PowerState {
        match self {
            Self::Fast => PowerState::PowerDownFast,
            Self::Slow => PowerState::PowerDownSlow,
            Self::SelfRefresh => PowerState::SelfRefresh,
        }
    }

    /// Depth ordering: a rank may only move to a strictly deeper state
    /// without an intervening wake.
    fn depth(self) -> u8 {
        match self {
            Self::Fast => 1,
            Self::Slow => 2,
            Self::SelfRefresh => 3,
        }
    }
}

/// DRAM cycles one rank has spent in each power state.
///
/// Residency is accrued in closed form at state transitions (never per
/// cycle), so it is exact regardless of whether the simulation kernel ticks
/// every cycle or fast-forwards over idle stretches; at any observation point
/// the buckets sum to the elapsed cycle count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowerResidency {
    /// Cycles with CKE high and at least one open row.
    pub active_standby: u64,
    /// Cycles with CKE high and all banks precharged.
    pub precharge_standby: u64,
    /// Cycles in fast-exit power-down.
    pub power_down_fast: u64,
    /// Cycles in slow-exit power-down.
    pub power_down_slow: u64,
    /// Cycles in self-refresh.
    pub self_refresh: u64,
}

impl PowerResidency {
    fn bucket_mut(&mut self, state: PowerState) -> &mut u64 {
        match state {
            PowerState::ActiveStandby => &mut self.active_standby,
            PowerState::PrechargeStandby => &mut self.precharge_standby,
            PowerState::PowerDownFast => &mut self.power_down_fast,
            PowerState::PowerDownSlow => &mut self.power_down_slow,
            PowerState::SelfRefresh => &mut self.self_refresh,
        }
    }

    /// Total cycles accounted for (equals the elapsed cycles of the rank).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.active_standby
            + self.precharge_standby
            + self.power_down_fast
            + self.power_down_slow
            + self.self_refresh
    }

    /// Cycles spent in any CKE-low state.
    #[must_use]
    pub fn powered_down(&self) -> u64 {
        self.power_down_fast + self.power_down_slow + self.self_refresh
    }
}

/// A DRAM rank: a set of banks that share command/address pins and obey
/// rank-level activation and turnaround constraints.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Issue times of the most recent ACTIVATEs (bounded to 4 for tFAW).
    act_window: VecDeque<DramCycles>,
    /// Earliest cycle the next ACTIVATE may issue due to tRRD.
    next_act: DramCycles,
    /// Earliest cycle a READ may issue to this rank (write-to-read).
    next_read: DramCycles,
    /// Earliest cycle a WRITE may issue to this rank.
    next_write: DramCycles,
    /// Cycle at which the next refresh becomes due.
    next_refresh_due: DramCycles,
    /// Earliest cycle a REF may issue (power-down exit fence).
    next_ref: DramCycles,
    /// Number of REF commands issued.
    refreshes: u64,
    /// Current CKE power state.
    power: PowerState,
    /// Cycle the current power state was entered (residency accrual mark).
    power_since: DramCycles,
    /// Cycles accrued per power state up to `power_since`.
    residency: PowerResidency,
    /// Cycle by which all in-rank activity (bursts, recovery windows,
    /// refresh) has completed; CKE may not drop before this.
    quiet_at: DramCycles,
    /// Earliest cycle CKE may toggle again (`tCKE` minimum pulse width).
    cke_ok_at: DramCycles,
    /// Controller-initiated entries into fast/slow power-down.
    power_down_entries: u64,
    /// Controller-initiated entries into self-refresh.
    self_refresh_entries: u64,
    /// Power-down exits (explicit wakes).
    power_wakes: u64,
}

impl Rank {
    /// Creates a rank with `banks` idle banks.
    #[must_use]
    pub fn new(banks: usize, t: &TimingParams) -> Self {
        Self {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            act_window: VecDeque::with_capacity(4),
            next_act: 0,
            next_read: 0,
            next_write: 0,
            next_refresh_due: t.t_refi,
            next_ref: 0,
            refreshes: 0,
            power: PowerState::PrechargeStandby,
            power_since: 0,
            residency: PowerResidency::default(),
            quiet_at: 0,
            cke_ok_at: 0,
            power_down_entries: 0,
            self_refresh_entries: 0,
            power_wakes: 0,
        }
    }

    /// Number of banks in the rank.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// Mutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_mut(&mut self, bank: usize) -> &mut Bank {
        &mut self.banks[bank]
    }

    /// Iterates over the banks.
    pub fn banks(&self) -> impl Iterator<Item = &Bank> {
        self.banks.iter()
    }

    /// Total REF commands issued to this rank.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Cycle at which the next periodic refresh becomes due.
    #[must_use]
    pub fn next_refresh_due(&self) -> DramCycles {
        self.next_refresh_due
    }

    /// Whether a refresh is due at `now`. A rank in self-refresh maintains
    /// itself, so no external refresh ever becomes due for it.
    #[must_use]
    pub fn refresh_due(&self, now: DramCycles) -> bool {
        now >= self.next_refresh_due && !self.in_self_refresh()
    }

    /// Earliest cycle a REF command may issue (rank-level fence: power-down
    /// exit latency, previous refresh completion).
    #[must_use]
    pub fn next_refresh_allowed(&self) -> DramCycles {
        self.next_ref
    }

    /// Earliest cycle an ACTIVATE may issue considering tRRD and tFAW
    /// (rank-level constraints only).
    #[must_use]
    pub fn next_activate_allowed(&self, t: &TimingParams) -> DramCycles {
        let faw_limit = if self.act_window.len() == 4 {
            self.act_window.front().copied().unwrap_or(0) + t.t_faw
        } else {
            0
        };
        self.next_act.max(faw_limit)
    }

    /// Whether rank-level constraints allow an ACTIVATE at `now`.
    #[must_use]
    pub fn can_activate(&self, now: DramCycles, t: &TimingParams) -> bool {
        now >= self.next_activate_allowed(t)
    }

    /// Whether rank-level constraints allow a READ at `now`.
    #[must_use]
    pub fn can_read(&self, now: DramCycles) -> bool {
        now >= self.next_read
    }

    /// Whether rank-level constraints allow a WRITE at `now`.
    #[must_use]
    pub fn can_write(&self, now: DramCycles) -> bool {
        now >= self.next_write
    }

    /// Earliest cycle a READ may issue (rank-level constraints only).
    #[must_use]
    pub fn next_read_allowed(&self) -> DramCycles {
        self.next_read
    }

    /// Earliest cycle a WRITE may issue (rank-level constraints only).
    #[must_use]
    pub fn next_write_allowed(&self) -> DramCycles {
        self.next_write
    }

    /// Records an ACTIVATE issued at `now`.
    pub fn record_activate(&mut self, now: DramCycles, t: &TimingParams) {
        debug_assert!(
            self.can_activate(now, t),
            "rank-level ACT violation at {now}"
        );
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(now);
        self.next_act = self.next_act.max(now + t.t_rrd);
        self.quiet_at = self.quiet_at.max(now + t.t_rcd);
    }

    /// Records a READ issued at `now`.
    pub fn record_read(&mut self, now: DramCycles, t: &TimingParams) {
        self.next_read = self.next_read.max(now + t.t_ccd);
        self.next_write = self.next_write.max(now + t.t_ccd);
        self.quiet_at = self.quiet_at.max(now + t.cl + t.t_burst);
    }

    /// Records a WRITE issued at `now`.
    pub fn record_write(&mut self, now: DramCycles, t: &TimingParams) {
        self.next_write = self.next_write.max(now + t.t_ccd);
        self.next_read = self.next_read.max(now + t.write_to_read_same_rank());
        self.quiet_at = self.quiet_at.max(now + t.write_to_precharge());
    }

    /// Records a PRECHARGE issued to one of this rank's banks at `now`.
    pub fn record_precharge(&mut self, now: DramCycles, t: &TimingParams) {
        self.quiet_at = self.quiet_at.max(now + t.t_rp);
    }

    /// Extends the quiet window: CKE may not drop before `cycle` (used for
    /// auto-precharge completions tracked at the bank level).
    pub fn note_quiet_until(&mut self, cycle: DramCycles) {
        self.quiet_at = self.quiet_at.max(cycle);
    }

    /// Whether every bank in the rank is idle (required before REF).
    #[must_use]
    pub fn all_banks_idle(&self) -> bool {
        self.banks.iter().all(|b| b.open_row().is_none())
    }

    /// Issues a REF at `now`: blocks all banks for `tRFC` and schedules the
    /// next refresh interval. Returns the cycle at which the rank is usable.
    ///
    /// # Panics
    ///
    /// Panics if any bank still has an open row or the rank is powered down.
    pub fn refresh(&mut self, now: DramCycles, t: &TimingParams) -> DramCycles {
        assert!(
            self.all_banks_idle(),
            "REF issued at {now} while banks still have open rows"
        );
        assert!(
            !self.powered_down(),
            "REF issued at {now} while the rank is powered down"
        );
        let done = now + t.t_rfc;
        for bank in &mut self.banks {
            bank.block_until(done);
        }
        self.next_act = self.next_act.max(done);
        self.next_read = self.next_read.max(done);
        self.next_write = self.next_write.max(done);
        self.next_ref = self.next_ref.max(done);
        self.quiet_at = self.quiet_at.max(done);
        // Keep the refresh cadence anchored to the schedule, not to `now`,
        // so postponed refreshes do not drift the average interval.
        self.next_refresh_due += t.t_refi;
        self.refreshes += 1;
        done
    }

    // ------------------------------------------------------------------
    // Power-state machine
    // ------------------------------------------------------------------

    /// Accrues residency of the current power state up to `now` and marks
    /// `now` as the new accrual point.
    fn accrue_power(&mut self, now: DramCycles) {
        debug_assert!(
            now >= self.power_since,
            "power residency accrual must be monotone ({now} < {})",
            self.power_since
        );
        *self.residency.bucket_mut(self.power) += now.saturating_sub(self.power_since);
        self.power_since = now;
    }

    fn set_power(&mut self, state: PowerState, now: DramCycles) {
        self.accrue_power(now);
        self.power = state;
    }

    /// Re-derives the standby state from the row-buffer state at `now`.
    /// No-op while powered down (CKE-low states are left explicitly).
    pub(crate) fn update_standby(&mut self, now: DramCycles) {
        if self.power.is_powered_down() {
            return;
        }
        let state = if self.all_banks_idle() {
            PowerState::PrechargeStandby
        } else {
            PowerState::ActiveStandby
        };
        if state != self.power {
            self.set_power(state, now);
        }
    }

    /// Current CKE power state.
    #[must_use]
    pub fn power_state(&self) -> PowerState {
        self.power
    }

    /// Whether CKE is low (no commands accepted until a wake).
    #[must_use]
    pub fn powered_down(&self) -> bool {
        self.power.is_powered_down()
    }

    /// Whether the rank is in self-refresh.
    #[must_use]
    pub fn in_self_refresh(&self) -> bool {
        self.power == PowerState::SelfRefresh
    }

    /// Per-state residency with the current state accrued up to `now`.
    ///
    /// Pure closed-form read: the buckets always sum to `now`, whether the
    /// simulation ticked every cycle or fast-forwarded.
    #[must_use]
    pub fn residency_at(&self, now: DramCycles) -> PowerResidency {
        let mut r = self.residency;
        *r.bucket_mut(self.power) += now.saturating_sub(self.power_since);
        r
    }

    /// Controller-initiated power-down entries (fast or slow) so far.
    #[must_use]
    pub fn power_down_entries(&self) -> u64 {
        self.power_down_entries
    }

    /// Controller-initiated self-refresh entries so far.
    #[must_use]
    pub fn self_refresh_entries(&self) -> u64 {
        self.self_refresh_entries
    }

    /// Power-down exits so far.
    #[must_use]
    pub fn power_wakes(&self) -> u64 {
        self.power_wakes
    }

    /// Earliest cycle a power-down entry could be legal from the current
    /// state, assuming the state stays frozen: all in-rank activity complete
    /// (`quiet_at`) and the CKE minimum pulse width honored.
    #[must_use]
    pub fn earliest_power_down(&self) -> DramCycles {
        self.quiet_at.max(self.cke_ok_at)
    }

    /// Whether the rank may enter (or deepen into) `mode` at `now`.
    ///
    /// Entry from standby requires all banks precharged, all in-rank activity
    /// complete and the `tCKE` fence; an already powered-down rank may only
    /// move to a strictly deeper state (fast → slow → self-refresh).
    #[must_use]
    pub fn can_enter_power_down(&self, mode: PowerDownMode, now: DramCycles) -> bool {
        match self.power {
            PowerState::PrechargeStandby => now >= self.earliest_power_down(),
            PowerState::ActiveStandby => false,
            PowerState::PowerDownFast => {
                mode.depth() > PowerDownMode::Fast.depth() && now >= self.cke_ok_at
            }
            PowerState::PowerDownSlow => {
                mode.depth() > PowerDownMode::Slow.depth() && now >= self.cke_ok_at
            }
            PowerState::SelfRefresh => false,
        }
    }

    /// Enters (or deepens into) the low-power state `mode` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not legal; check
    /// [`Rank::can_enter_power_down`] first.
    pub fn enter_power_down(&mut self, mode: PowerDownMode, now: DramCycles, t: &TimingParams) {
        assert!(
            self.can_enter_power_down(mode, now),
            "illegal power-down entry to {mode:?} at {now} (state {:?})",
            self.power
        );
        let from_standby = !self.power.is_powered_down();
        self.set_power(mode.target(), now);
        self.cke_ok_at = now + t.t_cke;
        match mode {
            PowerDownMode::SelfRefresh => self.self_refresh_entries += 1,
            PowerDownMode::Fast | PowerDownMode::Slow if from_standby => {
                self.power_down_entries += 1;
            }
            PowerDownMode::Fast | PowerDownMode::Slow => {}
        }
    }

    /// Begins the exit from the current low-power state at `now` and returns
    /// the cycle at which the rank accepts commands again (`tXP`, `tXPDLL`
    /// or `tXS` after CKE can go high).
    ///
    /// The exit window is charged as precharge standby — the DLL and
    /// peripheral circuitry are powering back up. Waking out of self-refresh
    /// resets the external refresh schedule: the on-die engine kept the cells
    /// alive, and JEDEC only requires the next REF within `tREFI` of exit.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not powered down.
    pub fn wake(&mut self, now: DramCycles, t: &TimingParams) -> DramCycles {
        let exit = match self.power {
            PowerState::PowerDownFast => t.t_xp,
            PowerState::PowerDownSlow => t.t_xpdll,
            PowerState::SelfRefresh => t.t_xs,
            PowerState::ActiveStandby | PowerState::PrechargeStandby => {
                // simlint: allow(panic) controller state machine never wakes an awake rank
                panic!("wake at {now} on a rank that is not powered down")
            }
        };
        let was_self_refresh = self.in_self_refresh();
        // CKE may not rise before the tCKE minimum low time has elapsed.
        let rise = now.max(self.cke_ok_at);
        let ready = rise + exit;
        self.set_power(PowerState::PrechargeStandby, now);
        self.cke_ok_at = rise + t.t_cke;
        self.quiet_at = ready;
        self.next_act = self.next_act.max(ready);
        self.next_read = self.next_read.max(ready);
        self.next_write = self.next_write.max(ready);
        self.next_ref = self.next_ref.max(ready);
        for bank in &mut self.banks {
            bank.block_until(ready);
        }
        if was_self_refresh {
            self.next_refresh_due = now + t.t_refi;
        }
        self.power_wakes += 1;
        ready
    }

    /// Serializes the rank's mutable state — every bank plus the rank-level
    /// timing fences, refresh schedule and power-state machine (checkpoint
    /// support). The bank count is config-derived and not serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        for bank in &self.banks {
            bank.save_state(w);
        }
        w.usize(self.act_window.len());
        for &cycle in &self.act_window {
            w.u64(cycle);
        }
        w.u64(self.next_act);
        w.u64(self.next_read);
        w.u64(self.next_write);
        w.u64(self.next_refresh_due);
        w.u64(self.next_ref);
        w.u64(self.refreshes);
        w.u8(match self.power {
            PowerState::ActiveStandby => 0,
            PowerState::PrechargeStandby => 1,
            PowerState::PowerDownFast => 2,
            PowerState::PowerDownSlow => 3,
            PowerState::SelfRefresh => 4,
        });
        w.u64(self.power_since);
        w.u64(self.residency.active_standby);
        w.u64(self.residency.precharge_standby);
        w.u64(self.residency.power_down_fast);
        w.u64(self.residency.power_down_slow);
        w.u64(self.residency.self_refresh);
        w.u64(self.quiet_at);
        w.u64(self.cke_ok_at);
        w.u64(self.power_down_entries);
        w.u64(self.self_refresh_entries);
        w.u64(self.power_wakes);
    }

    /// Restores the rank's mutable state from a checkpoint. The rank must
    /// have been built with the same bank count as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or
    /// impossible values (bad discriminants, oversized tFAW window).
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        for bank in &mut self.banks {
            bank.load_state(r)?;
        }
        let window = r.usize()?;
        if window > 4 {
            return Err(r.bad_value(format!("tFAW window length {window} exceeds 4")));
        }
        self.act_window.clear();
        for _ in 0..window {
            self.act_window.push_back(r.u64()?);
        }
        self.next_act = r.u64()?;
        self.next_read = r.u64()?;
        self.next_write = r.u64()?;
        self.next_refresh_due = r.u64()?;
        self.next_ref = r.u64()?;
        self.refreshes = r.u64()?;
        self.power = match r.u8()? {
            0 => PowerState::ActiveStandby,
            1 => PowerState::PrechargeStandby,
            2 => PowerState::PowerDownFast,
            3 => PowerState::PowerDownSlow,
            4 => PowerState::SelfRefresh,
            other => return Err(r.bad_value(format!("power state discriminant {other}"))),
        };
        self.power_since = r.u64()?;
        self.residency.active_standby = r.u64()?;
        self.residency.precharge_standby = r.u64()?;
        self.residency.power_down_fast = r.u64()?;
        self.residency.power_down_slow = r.u64()?;
        self.residency.self_refresh = r.u64()?;
        self.quiet_at = r.u64()?;
        self.cke_ok_at = r.u64()?;
        self.power_down_entries = r.u64()?;
        self.self_refresh_entries = r.u64()?;
        self.power_wakes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    fn open_and_close(
        rank: &mut Rank,
        bank: usize,
        now: DramCycles,
        tp: &TimingParams,
    ) -> DramCycles {
        rank.bank_mut(bank).activate(0, now, tp);
        rank.record_activate(now, tp);
        let pre_at = now + tp.t_ras;
        rank.bank_mut(bank).precharge(pre_at, tp);
        pre_at + tp.t_rp
    }

    #[test]
    fn trrd_spaces_activates() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        r.bank_mut(0).activate(0, 0, &tp);
        r.record_activate(0, &tp);
        assert!(!r.can_activate(tp.t_rrd - 1, &tp));
        assert!(r.can_activate(tp.t_rrd, &tp));
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        // Issue 4 ACTs as fast as tRRD allows: 0, 5, 10, 15.
        for i in 0..4u64 {
            let now = i * tp.t_rrd;
            r.bank_mut(i as usize).activate(0, now, &tp);
            r.record_activate(now, &tp);
        }
        // Fifth ACT must wait for the tFAW window opened at cycle 0.
        assert_eq!(r.next_activate_allowed(&tp), tp.t_faw);
        assert!(!r.can_activate(20, &tp));
        assert!(r.can_activate(tp.t_faw, &tp));
    }

    #[test]
    fn write_to_read_turnaround() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        r.record_write(100, &tp);
        assert!(!r.can_read(100 + tp.write_to_read_same_rank() - 1));
        assert!(r.can_read(100 + tp.write_to_read_same_rank()));
        // Writes only need tCCD spacing.
        assert!(r.can_write(100 + tp.t_ccd));
    }

    #[test]
    fn refresh_blocks_every_bank_for_trfc() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        assert!(!r.refresh_due(tp.t_refi - 1));
        assert!(r.refresh_due(tp.t_refi));
        let done = r.refresh(tp.t_refi, &tp);
        assert_eq!(done, tp.t_refi + tp.t_rfc);
        for b in 0..8 {
            assert!(!r.bank(b).can_activate(done - 1));
            assert!(r.bank(b).can_activate(done));
        }
        assert_eq!(r.refreshes(), 1);
        assert_eq!(r.next_refresh_due(), 2 * tp.t_refi);
    }

    #[test]
    #[should_panic(expected = "open rows")]
    fn refresh_with_open_row_panics() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.bank_mut(0).activate(3, 0, &tp);
        r.record_activate(0, &tp);
        r.refresh(tp.t_refi, &tp);
    }

    #[test]
    fn all_banks_idle_reflects_bank_state() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        assert!(r.all_banks_idle());
        let reopen = open_and_close(&mut r, 0, 0, &tp);
        assert!(r.all_banks_idle());
        assert!(reopen > 0);
    }

    #[test]
    fn power_state_follows_row_buffer_state() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        assert_eq!(r.power_state(), PowerState::PrechargeStandby);
        r.bank_mut(0).activate(3, 10, &tp);
        r.record_activate(10, &tp);
        r.update_standby(10);
        assert_eq!(r.power_state(), PowerState::ActiveStandby);
        let pre_at = 10 + tp.t_ras;
        r.bank_mut(0).precharge(pre_at, &tp);
        r.record_precharge(pre_at, &tp);
        r.update_standby(pre_at);
        assert_eq!(r.power_state(), PowerState::PrechargeStandby);
        let res = r.residency_at(pre_at + 100);
        assert_eq!(res.active_standby, tp.t_ras);
        assert_eq!(res.precharge_standby, 10 + 100);
        assert_eq!(res.total(), pre_at + 100);
    }

    #[test]
    fn residency_sums_to_elapsed_and_is_monotone() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.enter_power_down(PowerDownMode::Fast, 50, &tp);
        let mut last_total = 0;
        for now in [50u64, 60, 200, 5_000] {
            let res = r.residency_at(now);
            assert_eq!(res.total(), now);
            assert!(res.total() >= last_total);
            last_total = res.total();
        }
        let ready = r.wake(5_000, &tp);
        assert_eq!(ready, 5_000 + tp.t_xp);
        let res = r.residency_at(6_000);
        assert_eq!(res.power_down_fast, 5_000 - 50);
        assert_eq!(res.precharge_standby, 50 + 1_000);
        assert_eq!(res.total(), 6_000);
    }

    #[test]
    fn power_down_requires_quiet_rank_and_tcke() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        // Open row: no power-down.
        r.bank_mut(0).activate(0, 0, &tp);
        r.record_activate(0, &tp);
        r.update_standby(0);
        assert!(!r.can_enter_power_down(PowerDownMode::Fast, 1_000));
        // Close it: entry legal only after the precharge completes (tRP).
        let pre_at = tp.t_ras;
        r.bank_mut(0).precharge(pre_at, &tp);
        r.record_precharge(pre_at, &tp);
        r.update_standby(pre_at);
        assert!(!r.can_enter_power_down(PowerDownMode::Fast, pre_at));
        let quiet = pre_at + tp.t_rp;
        assert_eq!(r.earliest_power_down(), quiet);
        assert!(r.can_enter_power_down(PowerDownMode::Fast, quiet));
        r.enter_power_down(PowerDownMode::Fast, quiet, &tp);
        assert!(r.powered_down());
        assert_eq!(r.power_down_entries(), 1);
        // A wake one cycle later is delayed by the tCKE minimum low time.
        let ready = r.wake(quiet + 1, &tp);
        assert_eq!(ready, quiet + tp.t_cke + tp.t_xp);
        assert!(!r.can_activate(ready - 1, &tp));
        assert!(r.can_activate(ready, &tp));
        assert_eq!(r.power_wakes(), 1);
    }

    #[test]
    fn deepening_goes_fast_slow_self_refresh_only() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.enter_power_down(PowerDownMode::Fast, 100, &tp);
        // Cannot re-enter the same or a shallower state.
        assert!(!r.can_enter_power_down(PowerDownMode::Fast, 10_000));
        // tCKE gates the next transition.
        assert!(!r.can_enter_power_down(PowerDownMode::Slow, 100 + tp.t_cke - 1));
        assert!(r.can_enter_power_down(PowerDownMode::Slow, 100 + tp.t_cke));
        r.enter_power_down(PowerDownMode::Slow, 200, &tp);
        assert_eq!(r.power_state(), PowerState::PowerDownSlow);
        // Deepening does not count as a fresh power-down entry.
        assert_eq!(r.power_down_entries(), 1);
        r.enter_power_down(PowerDownMode::SelfRefresh, 300, &tp);
        assert_eq!(r.self_refresh_entries(), 1);
        assert!(r.in_self_refresh());
        assert!(!r.can_enter_power_down(PowerDownMode::SelfRefresh, 10_000));
        let res = r.residency_at(400);
        assert_eq!(res.power_down_fast, 100);
        assert_eq!(res.power_down_slow, 100);
        assert_eq!(res.self_refresh, 100);
    }

    #[test]
    fn self_refresh_suspends_and_resets_the_refresh_schedule() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.enter_power_down(PowerDownMode::SelfRefresh, 10, &tp);
        // Long past the nominal due cycle, nothing is due.
        assert!(!r.refresh_due(tp.t_refi * 5));
        let wake_at = tp.t_refi * 5;
        let ready = r.wake(wake_at, &tp);
        assert_eq!(ready, wake_at + tp.t_xs);
        // The external schedule restarts one interval after exit.
        assert_eq!(r.next_refresh_due(), wake_at + tp.t_refi);
        assert!(!r.refresh_due(wake_at + tp.t_refi - 1));
        assert!(r.refresh_due(wake_at + tp.t_refi));
        // REF is fenced by the exit latency.
        assert_eq!(r.next_refresh_allowed(), ready);
    }

    #[test]
    fn slow_exit_pays_txpdll() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.enter_power_down(PowerDownMode::Slow, 100, &tp);
        let ready = r.wake(1_000, &tp);
        assert_eq!(ready, 1_000 + tp.t_xpdll);
    }

    #[test]
    #[should_panic(expected = "not powered down")]
    fn waking_a_standby_rank_panics() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.wake(0, &tp);
    }

    #[test]
    #[should_panic(expected = "illegal power-down entry")]
    fn power_down_with_open_row_panics() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.bank_mut(0).activate(3, 0, &tp);
        r.record_activate(0, &tp);
        r.update_standby(0);
        r.enter_power_down(PowerDownMode::Fast, 1_000, &tp);
    }
}
