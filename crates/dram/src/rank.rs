//! Per-rank timing bookkeeping: tRRD, tFAW, write-to-read turnaround and
//! refresh.

use std::collections::VecDeque;

use crate::bank::Bank;
use crate::timing::{DramCycles, TimingParams};

/// A DRAM rank: a set of banks that share command/address pins and obey
/// rank-level activation and turnaround constraints.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Issue times of the most recent ACTIVATEs (bounded to 4 for tFAW).
    act_window: VecDeque<DramCycles>,
    /// Earliest cycle the next ACTIVATE may issue due to tRRD.
    next_act: DramCycles,
    /// Earliest cycle a READ may issue to this rank (write-to-read).
    next_read: DramCycles,
    /// Earliest cycle a WRITE may issue to this rank.
    next_write: DramCycles,
    /// Cycle at which the next refresh becomes due.
    next_refresh_due: DramCycles,
    /// Number of REF commands issued.
    refreshes: u64,
}

impl Rank {
    /// Creates a rank with `banks` idle banks.
    #[must_use]
    pub fn new(banks: usize, t: &TimingParams) -> Self {
        Self {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            act_window: VecDeque::with_capacity(4),
            next_act: 0,
            next_read: 0,
            next_write: 0,
            next_refresh_due: t.t_refi,
            refreshes: 0,
        }
    }

    /// Number of banks in the rank.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// Mutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_mut(&mut self, bank: usize) -> &mut Bank {
        &mut self.banks[bank]
    }

    /// Iterates over the banks.
    pub fn banks(&self) -> impl Iterator<Item = &Bank> {
        self.banks.iter()
    }

    /// Total REF commands issued to this rank.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Cycle at which the next periodic refresh becomes due.
    #[must_use]
    pub fn next_refresh_due(&self) -> DramCycles {
        self.next_refresh_due
    }

    /// Whether a refresh is due at `now`.
    #[must_use]
    pub fn refresh_due(&self, now: DramCycles) -> bool {
        now >= self.next_refresh_due
    }

    /// Earliest cycle an ACTIVATE may issue considering tRRD and tFAW
    /// (rank-level constraints only).
    #[must_use]
    pub fn next_activate_allowed(&self, t: &TimingParams) -> DramCycles {
        let faw_limit = if self.act_window.len() == 4 {
            self.act_window.front().copied().unwrap_or(0) + t.t_faw
        } else {
            0
        };
        self.next_act.max(faw_limit)
    }

    /// Whether rank-level constraints allow an ACTIVATE at `now`.
    #[must_use]
    pub fn can_activate(&self, now: DramCycles, t: &TimingParams) -> bool {
        now >= self.next_activate_allowed(t)
    }

    /// Whether rank-level constraints allow a READ at `now`.
    #[must_use]
    pub fn can_read(&self, now: DramCycles) -> bool {
        now >= self.next_read
    }

    /// Whether rank-level constraints allow a WRITE at `now`.
    #[must_use]
    pub fn can_write(&self, now: DramCycles) -> bool {
        now >= self.next_write
    }

    /// Earliest cycle a READ may issue (rank-level constraints only).
    #[must_use]
    pub fn next_read_allowed(&self) -> DramCycles {
        self.next_read
    }

    /// Earliest cycle a WRITE may issue (rank-level constraints only).
    #[must_use]
    pub fn next_write_allowed(&self) -> DramCycles {
        self.next_write
    }

    /// Records an ACTIVATE issued at `now`.
    pub fn record_activate(&mut self, now: DramCycles, t: &TimingParams) {
        debug_assert!(
            self.can_activate(now, t),
            "rank-level ACT violation at {now}"
        );
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(now);
        self.next_act = self.next_act.max(now + t.t_rrd);
    }

    /// Records a READ issued at `now`.
    pub fn record_read(&mut self, now: DramCycles, t: &TimingParams) {
        self.next_read = self.next_read.max(now + t.t_ccd);
        self.next_write = self.next_write.max(now + t.t_ccd);
    }

    /// Records a WRITE issued at `now`.
    pub fn record_write(&mut self, now: DramCycles, t: &TimingParams) {
        self.next_write = self.next_write.max(now + t.t_ccd);
        self.next_read = self.next_read.max(now + t.write_to_read_same_rank());
    }

    /// Whether every bank in the rank is idle (required before REF).
    #[must_use]
    pub fn all_banks_idle(&self) -> bool {
        self.banks.iter().all(|b| b.open_row().is_none())
    }

    /// Issues a REF at `now`: blocks all banks for `tRFC` and schedules the
    /// next refresh interval. Returns the cycle at which the rank is usable.
    ///
    /// # Panics
    ///
    /// Panics if any bank still has an open row.
    pub fn refresh(&mut self, now: DramCycles, t: &TimingParams) -> DramCycles {
        assert!(
            self.all_banks_idle(),
            "REF issued at {now} while banks still have open rows"
        );
        let done = now + t.t_rfc;
        for bank in &mut self.banks {
            bank.block_until(done);
        }
        self.next_act = self.next_act.max(done);
        self.next_read = self.next_read.max(done);
        self.next_write = self.next_write.max(done);
        // Keep the refresh cadence anchored to the schedule, not to `now`,
        // so postponed refreshes do not drift the average interval.
        self.next_refresh_due += t.t_refi;
        self.refreshes += 1;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    fn open_and_close(
        rank: &mut Rank,
        bank: usize,
        now: DramCycles,
        tp: &TimingParams,
    ) -> DramCycles {
        rank.bank_mut(bank).activate(0, now, tp);
        rank.record_activate(now, tp);
        let pre_at = now + tp.t_ras;
        rank.bank_mut(bank).precharge(pre_at, tp);
        pre_at + tp.t_rp
    }

    #[test]
    fn trrd_spaces_activates() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        r.bank_mut(0).activate(0, 0, &tp);
        r.record_activate(0, &tp);
        assert!(!r.can_activate(tp.t_rrd - 1, &tp));
        assert!(r.can_activate(tp.t_rrd, &tp));
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        // Issue 4 ACTs as fast as tRRD allows: 0, 5, 10, 15.
        for i in 0..4u64 {
            let now = i * tp.t_rrd;
            r.bank_mut(i as usize).activate(0, now, &tp);
            r.record_activate(now, &tp);
        }
        // Fifth ACT must wait for the tFAW window opened at cycle 0.
        assert_eq!(r.next_activate_allowed(&tp), tp.t_faw);
        assert!(!r.can_activate(20, &tp));
        assert!(r.can_activate(tp.t_faw, &tp));
    }

    #[test]
    fn write_to_read_turnaround() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        r.record_write(100, &tp);
        assert!(!r.can_read(100 + tp.write_to_read_same_rank() - 1));
        assert!(r.can_read(100 + tp.write_to_read_same_rank()));
        // Writes only need tCCD spacing.
        assert!(r.can_write(100 + tp.t_ccd));
    }

    #[test]
    fn refresh_blocks_every_bank_for_trfc() {
        let tp = t();
        let mut r = Rank::new(8, &tp);
        assert!(!r.refresh_due(tp.t_refi - 1));
        assert!(r.refresh_due(tp.t_refi));
        let done = r.refresh(tp.t_refi, &tp);
        assert_eq!(done, tp.t_refi + tp.t_rfc);
        for b in 0..8 {
            assert!(!r.bank(b).can_activate(done - 1));
            assert!(r.bank(b).can_activate(done));
        }
        assert_eq!(r.refreshes(), 1);
        assert_eq!(r.next_refresh_due(), 2 * tp.t_refi);
    }

    #[test]
    #[should_panic(expected = "open rows")]
    fn refresh_with_open_row_panics() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        r.bank_mut(0).activate(3, 0, &tp);
        r.record_activate(0, &tp);
        r.refresh(tp.t_refi, &tp);
    }

    #[test]
    fn all_banks_idle_reflects_bank_state() {
        let tp = t();
        let mut r = Rank::new(2, &tp);
        assert!(r.all_banks_idle());
        let reopen = open_and_close(&mut r, 0, 0, &tp);
        assert!(r.all_banks_idle());
        assert!(reopen > 0);
    }
}
