//! # cloudmc-dram
//!
//! Cycle-level DDR3-style DRAM device model used by the `cloudmc` memory
//! controller study (a reproduction of *"Memory Controller Design Under Cloud
//! Workloads"*, IISWC 2016).
//!
//! The crate models the off-chip memory attached to one processor: channels
//! containing ranks of banks, each bank with a row buffer, governed by the
//! standard DDR3 timing constraints (tRCD, tRAS, tRP, tRC, tRTP, tWR, tWTR,
//! tRRD, tFAW, tCCD, burst occupancy, bus turnaround and refresh). It does
//! **not** schedule anything itself — the memory controller in
//! `cloudmc-memctrl` decides which [`Command`] to issue each cycle and this
//! crate checks legality and accounts for timing.
//!
//! ## Quick example
//!
//! ```
//! use cloudmc_dram::{Command, DramChannel, DramConfig, Location};
//!
//! let cfg = DramConfig::baseline(); // Table 2 of the paper
//! let mut channel = DramChannel::new(&cfg);
//! let loc = Location::new(0, 3, 1234, 17);
//!
//! // Open the row, then read a column out of it.
//! channel.issue(&Command::activate(loc), 0);
//! let rd_cycle = cfg.timing.t_rcd;
//! let outcome = channel.issue(&Command::read(loc, false), rd_cycle);
//! assert_eq!(outcome.completion_cycle, rd_cycle + cfg.timing.cl + cfg.timing.t_burst);
//! ```

#![forbid(unsafe_code)]

pub mod bank;
pub mod channel;
pub mod command;
pub mod config;
pub mod energy;
pub mod fault;
pub mod rank;
pub mod timing;

pub use bank::{Bank, BankState};
pub use channel::{ChannelStats, DramChannel};
pub use command::{Command, CommandKind, IssueOutcome};
pub use config::{DramConfig, Location};
pub use energy::{EnergyBreakdown, EnergyModel, EnergyParams};
pub use fault::{FaultConfig, FaultLedger, FaultModel, ReadFault, UncorrectablePolicy};
pub use rank::{PowerDownMode, PowerResidency, PowerState, Rank};
pub use timing::{DramCycles, TimingParams};
