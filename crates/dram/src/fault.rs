//! Deterministic DRAM fault injection.
//!
//! The model covers the three fault classes that matter for the paper's
//! cloud-consolidation scenarios:
//!
//! * **Transient bit flips** (retention/particle upsets), injected per read
//!   with a probability scaled by the rank's accumulated power-state
//!   residency — a rank that has spent most of its life in self-refresh or
//!   slow power-down carries a higher retention-error weight than one held
//!   in active standby, which is exactly the coupling the power policies of
//!   the controller trade off against.
//! * **Stuck-at cells**: planted rows whose reads always return a
//!   single-bit (SEC-correctable) error until the controller retires the row.
//! * **Hard row faults**: planted rows whose reads are always
//!   multi-bit (detected-uncorrectable) until retirement.
//!
//! Everything is a pure function of the configured seed and the observable
//! simulation state (request id, retry attempt, location, closed-form power
//! residency). There is **no stateful RNG stream**, so injection decisions
//! are bit-identical whether the kernel ticks every cycle or fast-forwards,
//! and for any worker-thread count.
//!
//! The model keeps a conservation ledger: every fault it ever materializes
//! is `injected`, and at all times `injected = corrected + uncorrectable +
//! latent` (planted sites count as injected-and-latent at construction and
//! move to corrected/uncorrectable on first discovery; transient flips are
//! injected and resolved at the same instant).

use std::collections::BTreeSet;

use crate::rank::PowerResidency;
use crate::timing::DramCycles;

/// What the controller does when ECC detects an uncorrectable error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UncorrectablePolicy {
    /// Record a typed error and surface it from the simulation run — the
    /// machine-check model. The simulation itself never panics.
    FailStop,
    /// Mark the cache line poisoned, keep running, and account every
    /// subsequent read of the poisoned line.
    PoisonAndContinue,
}

/// Configuration of the fault-injection model (per controller shard).
///
/// All rates are integers (fixed point or per-mille) so the configuration is
/// `Copy`, hashable and float-free — injection arithmetic stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Seed for all injection decisions (independent of the workload seed).
    pub seed: u64,
    /// Per-read transient-flip probability at unit vulnerability weight, as
    /// a binary fixed-point fraction times 2^32 (`2^32` = certainty). The
    /// effective per-read probability is this rate times the residency-
    /// weighted vulnerability of the target rank.
    pub transient_rate_fp: u64,
    /// Vulnerability weight while in active standby.
    pub weight_active: u32,
    /// Vulnerability weight while in precharge standby.
    pub weight_precharge: u32,
    /// Vulnerability weight while in fast-exit power-down.
    pub weight_pd_fast: u32,
    /// Vulnerability weight while in slow-exit (DLL-off) power-down.
    pub weight_pd_slow: u32,
    /// Vulnerability weight while in self-refresh (retention-dominated).
    pub weight_self_refresh: u32,
    /// Of injected transient faults, the per-mille share that are multi-bit
    /// (beyond SEC correction).
    pub uncorrectable_permille: u32,
    /// Of multi-bit faults, the per-mille share that alias to a valid
    /// codeword and silently miscorrect instead of being detected.
    pub miscorrect_permille: u32,
    /// Stuck-at (always-correctable) rows planted per rank.
    pub stuck_rows_per_rank: u32,
    /// Hard (always-uncorrectable) rows planted per rank.
    pub hard_rows_per_rank: u32,
    /// DRAM cycles between patrol-scrub reads; `0` disables scrubbing.
    pub scrub_interval: DramCycles,
    /// Corrected errors observed on one row before it is retired.
    pub retire_threshold: u32,
    /// Demand re-reads the controller issues after a corrected error before
    /// accepting the (corrected) data.
    pub max_demand_retries: u32,
    /// Base backoff before a demand retry, in DRAM cycles (doubles per
    /// attempt).
    pub retry_backoff: DramCycles,
    /// Policy on detected-uncorrectable errors.
    pub on_uncorrectable: UncorrectablePolicy,
}

impl FaultConfig {
    /// A conservative default: transient injection enabled at roughly one
    /// flip per hundred thousand reads (at unit weight), retention-weighted
    /// toward the low-power states, scrubbing off, poison-and-continue.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            seed: 1,
            transient_rate_fp: Self::rate_per_million_reads(10),
            weight_active: 1,
            weight_precharge: 1,
            weight_pd_fast: 2,
            weight_pd_slow: 4,
            weight_self_refresh: 8,
            uncorrectable_permille: 50,
            miscorrect_permille: 20,
            stuck_rows_per_rank: 0,
            hard_rows_per_rank: 0,
            scrub_interval: 0,
            retire_threshold: 4,
            max_demand_retries: 2,
            retry_backoff: 8,
            on_uncorrectable: UncorrectablePolicy::PoisonAndContinue,
        }
    }

    /// Fixed-point transient rate for `n` expected flips per million reads
    /// at unit vulnerability weight.
    #[must_use]
    pub fn rate_per_million_reads(n: u64) -> u64 {
        n * ((1u64 << 32) / 1_000_000)
    }

    /// Sum of the per-state vulnerability weights (used to check the model
    /// is not configured entirely inert by accident).
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        u64::from(self.weight_active)
            + u64::from(self.weight_precharge)
            + u64::from(self.weight_pd_fast)
            + u64::from(self.weight_pd_slow)
            + u64::from(self.weight_self_refresh)
    }

    /// Validates the configuration against the DRAM geometry it will be
    /// applied to.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self, banks_per_rank: usize, rows_per_bank: u64) -> Result<(), String> {
        if self.uncorrectable_permille > 1000 {
            return Err(format!(
                "uncorrectable_permille ({}) must be at most 1000",
                self.uncorrectable_permille
            ));
        }
        if self.miscorrect_permille > 1000 {
            return Err(format!(
                "miscorrect_permille ({}) must be at most 1000",
                self.miscorrect_permille
            ));
        }
        if self.retire_threshold == 0 {
            return Err("retire_threshold must be non-zero".to_owned());
        }
        if self.transient_rate_fp > 0 && self.total_weight() == 0 {
            return Err(
                "transient rate is non-zero but every vulnerability weight is 0".to_owned(),
            );
        }
        let rows_per_rank = banks_per_rank as u64 * rows_per_bank;
        let planted = u64::from(self.stuck_rows_per_rank) + u64::from(self.hard_rows_per_rank);
        if planted > rows_per_rank / 2 {
            return Err(format!(
                "planted faulty rows per rank ({planted}) exceed half the rank ({rows_per_rank} rows)"
            ));
        }
        Ok(())
    }
}

/// ECC-visible outcome of one read through the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Data returned clean.
    None,
    /// A single-bit error occurred and SEC corrected it.
    Corrected,
    /// A multi-bit error occurred.
    Uncorrectable {
        /// `true` when the error aliased to a valid codeword: ECC silently
        /// "corrected" to wrong data instead of detecting the fault.
        miscorrected: bool,
    },
}

/// Conservation ledger over every fault the model has materialized.
///
/// Invariant (checked by `tests/reliability_invariants.rs`):
/// `injected == corrected + uncorrectable + latent` at every observation
/// point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Faults materialized: every transient flip plus every planted site.
    pub injected: u64,
    /// Faults resolved by SEC correction (transient flips classified
    /// correctable, and planted stuck rows on first discovery).
    pub corrected: u64,
    /// Faults that escaped correction (detected-uncorrectable or silently
    /// miscorrected), including planted hard rows on first discovery.
    pub uncorrectable: u64,
    /// Planted sites not yet touched by any read (demand or scrub).
    pub latent: u64,
}

impl FaultLedger {
    /// Adds another ledger into this one (aggregation across channels or
    /// shards).
    pub fn merge(&mut self, other: &FaultLedger) {
        self.injected += other.injected;
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
        self.latent += other.latent;
    }
}

/// A faulty-row key within one channel: `(rank, bank, row)`.
type RowKey = (usize, usize, u64);

/// Deterministic fault injector for one DRAM channel.
///
/// Owned by the memory controller's channel state; the controller passes
/// every read completion (demand and scrub) through
/// [`FaultModel::classify_read`] and reacts to the returned [`ReadFault`].
#[derive(Debug, Clone)]
pub struct FaultModel {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    cfg: FaultConfig,
    /// Planted always-correctable (stuck-at single bit) rows.
    // simlint: allow(snapshot-coverage) deterministically re-planted from the seeded fault config
    stuck: BTreeSet<RowKey>,
    /// Planted always-uncorrectable (multi-bit hard) rows.
    // simlint: allow(snapshot-coverage) deterministically re-planted from the seeded fault config
    hard: BTreeSet<RowKey>,
    /// Planted rows already surfaced by at least one read.
    discovered: BTreeSet<RowKey>,
    ledger: FaultLedger,
}

/// The finalizer of `SplitMix64`: a cheap, high-quality 64-bit mixer used to
/// derive every injection decision from `(seed, id, attempt, location)`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultModel {
    /// Builds the injector for one channel of the given geometry, planting
    /// the configured stuck/hard rows at seed-derived locations.
    #[must_use]
    pub fn new(
        cfg: FaultConfig,
        channel: usize,
        ranks: usize,
        banks_per_rank: usize,
        rows_per_bank: u64,
    ) -> Self {
        let mut stuck = BTreeSet::new();
        let mut hard = BTreeSet::new();
        let plant = |set: &mut BTreeSet<RowKey>, tag: u64, count: u32| {
            for rank in 0..ranks {
                let mut planted = 0u32;
                let mut salt = 0u64;
                while planted < count {
                    let h = splitmix64(
                        cfg.seed
                            ^ tag.wrapping_mul(0x5183_9A0B)
                            ^ ((channel as u64) << 48)
                            ^ ((rank as u64) << 40)
                            ^ salt,
                    );
                    let bank = (h as usize) % banks_per_rank;
                    let row = (h >> 32) % rows_per_bank;
                    // Re-roll collisions (with this set or the sibling set)
                    // so the planted count is exact.
                    if set.insert((rank, bank, row)) {
                        planted += 1;
                    }
                    salt += 1;
                }
            }
        };
        plant(&mut stuck, 1, cfg.stuck_rows_per_rank);
        plant(&mut hard, 2, cfg.hard_rows_per_rank);
        hard.retain(|k| !stuck.contains(k));
        // Exact replanting of hard rows displaced by a stuck collision would
        // complicate nothing but the bookkeeping; with realistic counts
        // (a handful of rows out of 2^21) collisions essentially never
        // happen, and the ledger counts what was actually planted.
        let planted = (stuck.len() + hard.len()) as u64;
        Self {
            cfg,
            stuck,
            hard,
            discovered: BTreeSet::new(),
            ledger: FaultLedger {
                injected: planted,
                latent: planted,
                ..FaultLedger::default()
            },
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The conservation ledger so far.
    #[must_use]
    pub fn ledger(&self) -> FaultLedger {
        self.ledger
    }

    /// Residency-weighted vulnerability threshold in 2^-32 units: the
    /// transient rate scaled by the average per-state weight of the rank's
    /// lifetime so far. Pure integer arithmetic, exact under fast-forward
    /// because [`PowerResidency`] is closed-form.
    fn transient_threshold_fp(&self, residency: &PowerResidency) -> u64 {
        let total = residency.total();
        if total == 0 || self.cfg.transient_rate_fp == 0 {
            return self.cfg.transient_rate_fp;
        }
        let weighted: u128 = u128::from(residency.active_standby)
            * u128::from(self.cfg.weight_active)
            + u128::from(residency.precharge_standby) * u128::from(self.cfg.weight_precharge)
            + u128::from(residency.power_down_fast) * u128::from(self.cfg.weight_pd_fast)
            + u128::from(residency.power_down_slow) * u128::from(self.cfg.weight_pd_slow)
            + u128::from(residency.self_refresh) * u128::from(self.cfg.weight_self_refresh);
        let fp = u128::from(self.cfg.transient_rate_fp) * weighted / u128::from(total);
        // simlint: allow(panic) value clamped to u64::MAX on the previous line
        u64::try_from(fp.min(u128::from(u64::MAX))).expect("clamped above")
    }

    /// Classifies one read of `loc` for request `id` on retry `attempt`,
    /// given the target rank's power-state residency at the completion
    /// cycle. Advances the ledger.
    ///
    /// Deterministic: the outcome is a pure function of the seed and the
    /// arguments, so replaying the same simulation reproduces the same
    /// faults regardless of kernel mode or thread count.
    pub fn classify_read(
        &mut self,
        id: u64,
        attempt: u32,
        loc_rank: usize,
        loc_bank: usize,
        loc_row: u64,
        residency: &PowerResidency,
    ) -> ReadFault {
        let key = (loc_rank, loc_bank, loc_row);
        if self.hard.contains(&key) {
            self.discover(key);
            return ReadFault::Uncorrectable {
                miscorrected: false,
            };
        }
        if self.stuck.contains(&key) {
            let first = self.discover(key);
            if first {
                self.ledger.corrected += 1;
                // `discover` moved the site out of latent; credit it to the
                // corrected bucket (stuck cells are single-bit).
            }
            return ReadFault::Corrected;
        }
        let h = splitmix64(
            self.cfg.seed
                ^ id.wrapping_mul(0x9E37_79B9)
                ^ (u64::from(attempt) << 56)
                ^ ((loc_rank as u64) << 50)
                ^ ((loc_bank as u64) << 44)
                ^ loc_row.wrapping_mul(0x0001_0000_0001),
        );
        let threshold = self.transient_threshold_fp(residency);
        if u64::from((h >> 32) as u32) >= threshold.min(1 << 32) {
            return ReadFault::None;
        }
        self.ledger.injected += 1;
        let class_roll = h % 1000;
        if class_roll < u64::from(self.cfg.uncorrectable_permille) {
            self.ledger.uncorrectable += 1;
            let mis_roll = (h / 1000) % 1000;
            ReadFault::Uncorrectable {
                miscorrected: mis_roll < u64::from(self.cfg.miscorrect_permille),
            }
        } else {
            self.ledger.corrected += 1;
            ReadFault::Corrected
        }
    }

    /// Marks a planted site discovered; moves it out of the latent bucket.
    /// Returns whether this was the first discovery. Hard rows are credited
    /// to the uncorrectable bucket here; stuck rows are credited by the
    /// caller (they resolve as corrected).
    fn discover(&mut self, key: RowKey) -> bool {
        if self.discovered.insert(key) {
            self.ledger.latent -= 1;
            if self.hard.contains(&key) {
                self.ledger.uncorrectable += 1;
            }
            true
        } else {
            false
        }
    }

    /// Whether `(rank, bank, row)` hosts a planted (stuck or hard) site.
    #[must_use]
    pub fn is_planted(&self, rank: usize, bank: usize, row: u64) -> bool {
        let key = (rank, bank, row);
        self.stuck.contains(&key) || self.hard.contains(&key)
    }

    /// Planted sites not yet discovered (for diagnostics and conservation
    /// tests).
    #[must_use]
    pub fn latent_sites(&self) -> u64 {
        self.ledger.latent
    }

    /// Serializes the model's mutable state: the discovered-site set and the
    /// conservation ledger (checkpoint support). The planted stuck/hard sets
    /// are a pure function of the configuration and are rebuilt by
    /// [`FaultModel::new`], not serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("fault-model");
        w.usize(self.discovered.len());
        for &(rank, bank, row) in &self.discovered {
            w.usize(rank);
            w.usize(bank);
            w.u64(row);
        }
        w.u64(self.ledger.injected);
        w.u64(self.ledger.corrected);
        w.u64(self.ledger.uncorrectable);
        w.u64(self.ledger.latent);
    }

    /// Restores the model's mutable state from a checkpoint. The model must
    /// have been built with the same configuration as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or a
    /// discovered site that is not planted in this configuration.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("fault-model")?;
        let count = r.bounded_len(24)?;
        self.discovered.clear();
        for _ in 0..count {
            let key = (r.usize()?, r.usize()?, r.u64()?);
            if !self.stuck.contains(&key) && !self.hard.contains(&key) {
                return Err(r.bad_value(format!(
                    "discovered site {key:?} is not planted in this configuration"
                )));
            }
            self.discovered.insert(key);
        }
        self.ledger.injected = r.u64()?;
        self.ledger.corrected = r.u64()?;
        self.ledger.uncorrectable = r.u64()?;
        self.ledger.latent = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_rate(per_million: u64) -> FaultConfig {
        FaultConfig {
            transient_rate_fp: FaultConfig::rate_per_million_reads(per_million),
            ..FaultConfig::baseline()
        }
    }

    fn active_residency(cycles: u64) -> PowerResidency {
        PowerResidency {
            active_standby: cycles,
            ..PowerResidency::default()
        }
    }

    #[test]
    fn zero_rate_and_no_planted_rows_never_fault() {
        let mut m = FaultModel::new(cfg_with_rate(0), 0, 2, 8, 1 << 18);
        for id in 0..10_000u64 {
            let f = m.classify_read(id, 0, 0, 0, id % 128, &active_residency(1_000_000));
            assert_eq!(f, ReadFault::None);
        }
        assert_eq!(m.ledger(), FaultLedger::default());
    }

    #[test]
    fn high_rate_injects_and_ledger_conserves() {
        let mut m = FaultModel::new(cfg_with_rate(100_000), 0, 2, 8, 1 << 18);
        let res = active_residency(50_000);
        let mut corrected = 0u64;
        let mut uncorrectable = 0u64;
        for id in 0..20_000u64 {
            match m.classify_read(id, 0, (id % 2) as usize, 0, id % 1024, &res) {
                ReadFault::None => {}
                ReadFault::Corrected => corrected += 1,
                ReadFault::Uncorrectable { .. } => uncorrectable += 1,
            }
        }
        let ledger = m.ledger();
        assert!(ledger.injected > 0, "10% rate must inject within 20k reads");
        assert_eq!(ledger.corrected, corrected);
        assert_eq!(ledger.uncorrectable, uncorrectable);
        assert_eq!(
            ledger.injected,
            ledger.corrected + ledger.uncorrectable + ledger.latent
        );
        assert_eq!(ledger.latent, 0);
    }

    #[test]
    fn classification_is_a_pure_function_of_the_inputs() {
        let mk = || FaultModel::new(cfg_with_rate(50_000), 0, 2, 8, 1 << 18);
        let mut a = mk();
        let mut b = mk();
        let res = active_residency(123_456);
        for id in 0..5_000u64 {
            assert_eq!(
                a.classify_read(id, 0, 0, 3, id, &res),
                b.classify_read(id, 0, 0, 3, id, &res)
            );
        }
        assert_eq!(a.ledger(), b.ledger());
    }

    #[test]
    fn retry_attempt_rerolls_the_outcome() {
        let mut m = FaultModel::new(cfg_with_rate(500_000), 0, 2, 8, 1 << 18);
        let res = active_residency(10_000);
        // Find an id that faults on attempt 0, then check some attempt
        // clears it — a transient must not be sticky across retries.
        let mut cleared = false;
        for id in 0..10_000u64 {
            if m.classify_read(id, 0, 0, 0, 7, &res) != ReadFault::None {
                for attempt in 1..=8u32 {
                    if m.classify_read(id, attempt, 0, 0, 7, &res) == ReadFault::None {
                        cleared = true;
                        break;
                    }
                }
                if cleared {
                    break;
                }
            }
        }
        assert!(cleared, "retries must re-roll transient outcomes");
    }

    #[test]
    fn residency_weighting_raises_the_self_refresh_rate() {
        let cfg = cfg_with_rate(10_000);
        let mut active = FaultModel::new(cfg, 0, 2, 8, 1 << 18);
        let mut retention = FaultModel::new(cfg, 0, 2, 8, 1 << 18);
        let res_active = active_residency(1_000_000);
        let res_sleep = PowerResidency {
            self_refresh: 1_000_000,
            ..PowerResidency::default()
        };
        let mut n_active = 0u64;
        let mut n_sleep = 0u64;
        for id in 0..200_000u64 {
            if active.classify_read(id, 0, 0, 0, id % 512, &res_active) != ReadFault::None {
                n_active += 1;
            }
            if retention.classify_read(id, 0, 0, 0, id % 512, &res_sleep) != ReadFault::None {
                n_sleep += 1;
            }
        }
        assert!(
            n_sleep > n_active * 4,
            "self-refresh weight 8x must dominate ({n_sleep} vs {n_active})"
        );
    }

    #[test]
    fn planted_rows_are_latent_until_discovered() {
        let cfg = FaultConfig {
            stuck_rows_per_rank: 3,
            hard_rows_per_rank: 2,
            transient_rate_fp: 0,
            ..FaultConfig::baseline()
        };
        let mut m = FaultModel::new(cfg, 0, 2, 8, 1 << 18);
        let ledger = m.ledger();
        assert_eq!(ledger.injected, 10); // (3 stuck + 2 hard) x 2 ranks
        assert_eq!(ledger.latent, 10);
        // Sweep every row of every bank: a full patrol pass discovers all.
        let res = active_residency(1);
        let mut stuck_hits = 0u64;
        let mut hard_hits = 0u64;
        for rank in 0..2 {
            for bank in 0..8 {
                for row in 0..(1u64 << 18) {
                    if !m.is_planted(rank, bank, row) {
                        continue;
                    }
                    match m.classify_read(0, 0, rank, bank, row, &res) {
                        ReadFault::Corrected => stuck_hits += 1,
                        ReadFault::Uncorrectable { .. } => hard_hits += 1,
                        ReadFault::None => panic!("planted site read clean"),
                    }
                }
            }
        }
        assert_eq!(stuck_hits, 6);
        assert_eq!(hard_hits, 4);
        let after = m.ledger();
        assert_eq!(after.latent, 0);
        assert_eq!(after.corrected, 6);
        assert_eq!(after.uncorrectable, 4);
        assert_eq!(
            after.injected,
            after.corrected + after.uncorrectable + after.latent
        );
        // Repeat reads keep returning the fault but the ledger is settled.
        let again = m.classify_read(1, 0, 0, 0, 0, &res);
        let _ = again;
        assert_eq!(m.ledger().injected, after.injected);
    }

    #[test]
    fn validate_rejects_inconsistent_configs() {
        let mut cfg = FaultConfig::baseline();
        cfg.validate(8, 1 << 18).unwrap();
        cfg.uncorrectable_permille = 1001;
        assert!(cfg.validate(8, 1 << 18).is_err());
        let mut cfg = FaultConfig::baseline();
        cfg.retire_threshold = 0;
        assert!(cfg.validate(8, 1 << 18).is_err());
        let mut cfg = FaultConfig::baseline();
        cfg.weight_active = 0;
        cfg.weight_precharge = 0;
        cfg.weight_pd_fast = 0;
        cfg.weight_pd_slow = 0;
        cfg.weight_self_refresh = 0;
        assert!(cfg.validate(8, 1 << 18).is_err());
        let mut cfg = FaultConfig::baseline();
        cfg.stuck_rows_per_rank = u32::MAX;
        assert!(cfg.validate(8, 1 << 18).is_err());
    }
}
