//! DRAM command vocabulary.

use crate::config::Location;

/// The kind of a DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Open (activate) a row into the bank's row buffer.
    Activate,
    /// Column read burst from the open row.
    Read {
        /// Precharge the bank automatically after the read completes.
        auto_precharge: bool,
    },
    /// Column write burst into the open row.
    Write {
        /// Precharge the bank automatically after the write completes.
        auto_precharge: bool,
    },
    /// Close (precharge) the bank's row buffer.
    Precharge,
    /// Refresh all banks of a rank.
    Refresh,
}

impl CommandKind {
    /// Returns `true` for column commands (READ/WRITE) that transfer data.
    #[must_use]
    pub fn is_column(&self) -> bool {
        matches!(self, Self::Read { .. } | Self::Write { .. })
    }

    /// Returns `true` for READ commands.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, Self::Read { .. })
    }

    /// Returns `true` for WRITE commands.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, Self::Write { .. })
    }
}

impl std::fmt::Display for CommandKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Activate => "ACT",
            Self::Read {
                auto_precharge: false,
            } => "RD",
            Self::Read {
                auto_precharge: true,
            } => "RDA",
            Self::Write {
                auto_precharge: false,
            } => "WR",
            Self::Write {
                auto_precharge: true,
            } => "WRA",
            Self::Precharge => "PRE",
            Self::Refresh => "REF",
        };
        f.write_str(s)
    }
}

/// A fully specified DRAM command: what to do and where.
///
/// For [`CommandKind::Refresh`] only the `rank` field of the location is
/// meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    /// Command kind.
    pub kind: CommandKind,
    /// Target location within the channel.
    pub loc: Location,
}

impl Command {
    /// Activate the row addressed by `loc`.
    #[must_use]
    pub fn activate(loc: Location) -> Self {
        Self {
            kind: CommandKind::Activate,
            loc,
        }
    }

    /// Read the column addressed by `loc`.
    #[must_use]
    pub fn read(loc: Location, auto_precharge: bool) -> Self {
        Self {
            kind: CommandKind::Read { auto_precharge },
            loc,
        }
    }

    /// Write the column addressed by `loc`.
    #[must_use]
    pub fn write(loc: Location, auto_precharge: bool) -> Self {
        Self {
            kind: CommandKind::Write { auto_precharge },
            loc,
        }
    }

    /// Precharge the bank addressed by `loc`.
    #[must_use]
    pub fn precharge(loc: Location) -> Self {
        Self {
            kind: CommandKind::Precharge,
            loc,
        }
    }

    /// Refresh the rank addressed by `loc.rank`.
    #[must_use]
    pub fn refresh(rank: usize) -> Self {
        Self {
            kind: CommandKind::Refresh,
            loc: Location::new(rank, 0, 0, 0),
        }
    }
}

/// Result of successfully issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// Cycle at which the command's effect completes.
    ///
    /// * READ: cycle at which the last data beat has been returned.
    /// * WRITE: cycle at which the write burst has been driven on the bus.
    /// * ACTIVATE: cycle at which column commands may target the row.
    /// * PRECHARGE: cycle at which the bank can accept an ACTIVATE.
    /// * REFRESH: cycle at which the rank becomes usable again.
    pub completion_cycle: u64,
    /// Whether the access hit the currently open row (column commands only).
    pub row_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_compact() {
        let loc = Location::new(0, 0, 0, 0);
        assert_eq!(Command::activate(loc).kind.to_string(), "ACT");
        assert_eq!(Command::read(loc, false).kind.to_string(), "RD");
        assert_eq!(Command::read(loc, true).kind.to_string(), "RDA");
        assert_eq!(Command::write(loc, false).kind.to_string(), "WR");
        assert_eq!(Command::write(loc, true).kind.to_string(), "WRA");
        assert_eq!(Command::precharge(loc).kind.to_string(), "PRE");
        assert_eq!(Command::refresh(1).kind.to_string(), "REF");
    }

    #[test]
    fn kind_predicates() {
        assert!(CommandKind::Read {
            auto_precharge: false
        }
        .is_column());
        assert!(CommandKind::Write {
            auto_precharge: true
        }
        .is_column());
        assert!(!CommandKind::Activate.is_column());
        assert!(CommandKind::Read {
            auto_precharge: true
        }
        .is_read());
        assert!(CommandKind::Write {
            auto_precharge: false
        }
        .is_write());
        assert!(!CommandKind::Precharge.is_read());
    }

    #[test]
    fn refresh_targets_rank() {
        let c = Command::refresh(1);
        assert_eq!(c.loc.rank, 1);
        assert_eq!(c.kind, CommandKind::Refresh);
    }
}
