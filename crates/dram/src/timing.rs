//! DRAM timing parameters.
//!
//! All parameters are expressed in DRAM clock cycles (memory-bus command
//! clock, i.e. half the data rate for DDR devices). The baseline preset
//! matches Table 2 of the paper: DDR3-1600 (800 MHz command clock),
//! `tCAS-tRCD-tRP-tRAS = 11-11-11-28`, `tRC-tWR-tWTR-tRTP = 39-12-6-6`,
//! `tRRD = 5`, `tFAW = 24`.

/// A number of DRAM clock cycles.
pub type DramCycles = u64;

/// Complete set of DRAM timing constraints used by the device model.
///
/// The model is a conservative DDR3-style timing model: it enforces the
/// bank-level (`tRCD`, `tRAS`, `tRP`, `tRC`, `tRTP`, `tWR`), rank-level
/// (`tRRD`, `tFAW`, `tWTR`), and channel-level (`tCCD`, burst occupancy,
/// read/write turnaround, `tRTRS`) constraints that dominate main-memory
/// latency and bandwidth for the workloads studied in the paper.
///
/// # Examples
///
/// ```
/// use cloudmc_dram::TimingParams;
///
/// let t = TimingParams::ddr3_1600();
/// assert_eq!(t.cl, 11);
/// assert_eq!(t.t_faw, 24);
/// // Row-cycle time is at least tRAS + tRP.
/// assert!(t.t_rc >= t.t_ras + t.t_rp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Command-clock period in picoseconds (1.25 ns for DDR3-1600).
    pub t_ck_ps: u64,
    /// CAS latency: READ command to first data beat.
    pub cl: DramCycles,
    /// CAS write latency: WRITE command to first data beat.
    pub cwl: DramCycles,
    /// ACTIVATE to internal READ/WRITE delay.
    pub t_rcd: DramCycles,
    /// PRECHARGE to ACTIVATE delay (row-precharge time).
    pub t_rp: DramCycles,
    /// ACTIVATE to PRECHARGE delay (row-active time).
    pub t_ras: DramCycles,
    /// ACTIVATE to ACTIVATE delay, same bank (row-cycle time).
    pub t_rc: DramCycles,
    /// Write recovery time: end of write burst to PRECHARGE.
    pub t_wr: DramCycles,
    /// Write-to-read turnaround, same rank: end of write burst to READ.
    pub t_wtr: DramCycles,
    /// READ to PRECHARGE delay.
    pub t_rtp: DramCycles,
    /// ACTIVATE to ACTIVATE delay, different banks of the same rank.
    pub t_rrd: DramCycles,
    /// Four-activate window: at most four ACTIVATEs to a rank per window.
    pub t_faw: DramCycles,
    /// Column-to-column delay (minimum spacing of column commands).
    pub t_ccd: DramCycles,
    /// Data-bus occupancy of one burst (BL/2 for DDR).
    pub t_burst: DramCycles,
    /// Rank-to-rank data-bus switch penalty.
    pub t_rtrs: DramCycles,
    /// Average refresh interval (REF-to-REF).
    pub t_refi: DramCycles,
    /// Refresh cycle time (REF command duration).
    pub t_rfc: DramCycles,
    /// Minimum CKE pulse width: once clock-enable toggles (power-down entry
    /// or exit), it must hold its level for this many cycles.
    pub t_cke: DramCycles,
    /// Fast-exit power-down exit latency: CKE high to the next valid command.
    pub t_xp: DramCycles,
    /// Slow-exit (DLL-off) power-down exit latency to a command that needs
    /// the DLL (any column access; applied to all commands by this model).
    pub t_xpdll: DramCycles,
    /// Self-refresh exit latency: CKE high to the next valid command
    /// (dominated by one internal refresh cycle, roughly `tRFC + 10 ns`).
    pub t_xs: DramCycles,
}

impl TimingParams {
    /// DDR3-1600 timings used by the paper's baseline (Table 2).
    #[must_use]
    pub fn ddr3_1600() -> Self {
        Self {
            t_ck_ps: 1250,
            cl: 11,
            cwl: 8,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_rrd: 5,
            t_faw: 24,
            t_ccd: 4,
            t_burst: 4,
            t_rtrs: 2,
            t_refi: 6240,
            t_rfc: 208,
            t_cke: 4,
            t_xp: 6,
            t_xpdll: 20,
            t_xs: 216,
        }
    }

    /// DDR4-2400 timings (1200 MHz command clock, CL17 speed grade, 8 Gb
    /// devices), a faster generation for the power/energy sensitivity study.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        Self {
            t_ck_ps: 833,
            cl: 17,
            cwl: 12,
            t_rcd: 17,
            t_rp: 17,
            t_ras: 39,
            t_rc: 56,
            t_wr: 18,
            t_wtr: 9,
            t_rtp: 9,
            t_rrd: 6,
            t_faw: 26,
            t_ccd: 5,
            t_burst: 4,
            t_rtrs: 2,
            t_refi: 9360,
            t_rfc: 420,
            t_cke: 6,
            t_xp: 8,
            t_xpdll: 29,
            t_xs: 432,
        }
    }

    /// DDR3-1066 timings, a slower grade useful for sensitivity studies.
    #[must_use]
    pub fn ddr3_1066() -> Self {
        Self {
            t_ck_ps: 1875,
            cl: 8,
            cwl: 6,
            t_rcd: 8,
            t_rp: 8,
            t_ras: 20,
            t_rc: 28,
            t_wr: 8,
            t_wtr: 4,
            t_rtp: 4,
            t_rrd: 4,
            t_faw: 20,
            t_ccd: 4,
            t_burst: 4,
            t_rtrs: 2,
            t_refi: 4160,
            t_rfc: 139,
            t_cke: 3,
            t_xp: 4,
            t_xpdll: 13,
            t_xs: 145,
        }
    }

    /// Read-to-write turnaround on the shared data bus of one channel.
    ///
    /// A WRITE issued after a READ must not drive the bus before the read
    /// burst has completed plus a bus-turnaround bubble.
    #[must_use]
    pub fn read_to_write(&self) -> DramCycles {
        (self.cl + self.t_burst + self.t_rtrs).saturating_sub(self.cwl)
    }

    /// Write-to-read turnaround within the same rank.
    #[must_use]
    pub fn write_to_read_same_rank(&self) -> DramCycles {
        self.cwl + self.t_burst + self.t_wtr
    }

    /// Write-to-precharge delay within the same bank.
    #[must_use]
    pub fn write_to_precharge(&self) -> DramCycles {
        self.cwl + self.t_burst + self.t_wr
    }

    /// Duration in nanoseconds of `cycles` DRAM cycles.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: DramCycles) -> f64 {
        cycles as f64 * self.t_ck_ps as f64 / 1000.0
    }

    /// Peak data-bus bandwidth in bytes per second for a 64-bit channel.
    #[must_use]
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        // 8 bytes per beat, 2 beats per command-clock cycle (DDR).
        let cycles_per_sec = 1.0e12 / self.t_ck_ps as f64;
        cycles_per_sec * 2.0 * 8.0
    }

    /// Validates internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// relationship (e.g. `tRC < tRAS + tRP`).
    pub fn validate(&self) -> Result<(), String> {
        if self.t_ck_ps == 0 {
            return Err("tCK must be non-zero".to_owned());
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must be >= tRAS ({}) + tRP ({})",
                self.t_rc, self.t_ras, self.t_rp
            ));
        }
        if self.t_faw < self.t_rrd {
            return Err(format!(
                "tFAW ({}) must be >= tRRD ({})",
                self.t_faw, self.t_rrd
            ));
        }
        if self.t_burst == 0 || self.t_ccd == 0 {
            return Err("burst length and tCCD must be non-zero".to_owned());
        }
        if self.t_refi > 0 && self.t_rfc >= self.t_refi {
            return Err(format!(
                "tRFC ({}) must be < tREFI ({})",
                self.t_rfc, self.t_refi
            ));
        }
        if self.t_cke == 0 || self.t_xp == 0 {
            return Err("tCKE and tXP must be non-zero".to_owned());
        }
        if self.t_xpdll < self.t_xp {
            return Err(format!(
                "tXPDLL ({}) must be >= tXP ({})",
                self.t_xpdll, self.t_xp
            ));
        }
        if self.t_xs < self.t_rfc {
            return Err(format!(
                "tXS ({}) must be >= tRFC ({}): self-refresh exit covers one \
                 internal refresh cycle",
                self.t_xs, self.t_rfc
            ));
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_matches_paper_table2() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(
            (t.cl, t.t_rcd, t.t_rp, t.t_ras),
            (11, 11, 11, 28),
            "tCAS-tRCD-tRP-tRAS must be 11-11-11-28"
        );
        assert_eq!((t.t_rc, t.t_wr, t.t_wtr, t.t_rtp), (39, 12, 6, 6));
        assert_eq!((t.t_rrd, t.t_faw), (5, 24));
    }

    #[test]
    fn presets_are_valid() {
        TimingParams::ddr3_1600().validate().unwrap();
        TimingParams::ddr3_1066().validate().unwrap();
        TimingParams::ddr4_2400().validate().unwrap();
    }

    #[test]
    fn ddr3_1600_power_mode_fences_are_pinned() {
        let t = TimingParams::ddr3_1600();
        assert_eq!((t.t_cke, t.t_xp, t.t_xpdll, t.t_xs), (4, 6, 20, 216));
        assert!(t.t_xs >= t.t_rfc);
    }

    #[test]
    fn ddr4_2400_preset_is_pinned() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(t.t_ck_ps, 833);
        assert_eq!((t.cl, t.t_rcd, t.t_rp, t.t_ras), (17, 17, 17, 39));
        assert_eq!((t.t_rc, t.t_wr, t.t_wtr, t.t_rtp), (56, 18, 9, 9));
        assert_eq!((t.t_rrd, t.t_faw, t.t_ccd), (6, 26, 5));
        assert_eq!((t.t_refi, t.t_rfc), (9360, 420));
        assert_eq!((t.t_cke, t.t_xp, t.t_xpdll, t.t_xs), (6, 8, 29, 432));
        // Faster clock than DDR3-1600, higher peak bandwidth.
        let gb = t.peak_bandwidth_bytes_per_sec() / 1.0e9;
        assert!((gb - 19.2).abs() < 0.05, "got {gb}");
    }

    #[test]
    fn validate_rejects_bad_power_fences() {
        let mut t = TimingParams::ddr3_1600();
        t.t_xp = 0;
        assert!(t.validate().is_err());
        t = TimingParams::ddr3_1600();
        t.t_xpdll = t.t_xp - 1;
        assert!(t.validate().is_err());
        t = TimingParams::ddr3_1600();
        t.t_xs = t.t_rfc - 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_trc() {
        let mut t = TimingParams::ddr3_1600();
        t.t_rc = 10;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_tck() {
        let mut t = TimingParams::ddr3_1600();
        t.t_ck_ps = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_faw_smaller_than_rrd() {
        let mut t = TimingParams::ddr3_1600();
        t.t_faw = 2;
        assert!(t.validate().is_err());
    }

    #[test]
    fn peak_bandwidth_is_12_point_8_gb_per_sec() {
        let t = TimingParams::ddr3_1600();
        let gb = t.peak_bandwidth_bytes_per_sec() / 1.0e9;
        assert!((gb - 12.8).abs() < 0.01, "got {gb}");
    }

    #[test]
    fn cycles_to_ns_uses_tck() {
        let t = TimingParams::ddr3_1600();
        assert!((t.cycles_to_ns(8) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn turnaround_helpers_are_consistent() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.read_to_write(), 11 + 4 + 2 - 8);
        assert_eq!(t.write_to_read_same_rank(), 8 + 4 + 6);
        assert_eq!(t.write_to_precharge(), 8 + 4 + 12);
    }
}
