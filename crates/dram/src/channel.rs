//! The per-channel DRAM device model.
//!
//! A [`DramChannel`] owns the ranks and banks behind one memory channel and
//! enforces every timing constraint of the model when commands are issued:
//! bank-level (tRCD/tRAS/tRP/tRC/tRTP/tWR via [`crate::bank::Bank`]),
//! rank-level (tRRD/tFAW/tWTR via [`crate::rank::Rank`]) and channel-level
//! (command-bus occupancy, data-bus occupancy, read/write turnaround, tRTRS).

use crate::command::{Command, CommandKind, IssueOutcome};
use crate::config::{DramConfig, Location};
use crate::rank::{PowerDownMode, PowerState, Rank};
use crate::timing::{DramCycles, TimingParams};

/// Direction of the last data burst on the channel's data bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusDirection {
    Read,
    Write,
}

/// Event and utilization counters for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// ACTIVATE commands issued.
    pub activates: u64,
    /// PRECHARGE commands issued (explicit and auto-precharge).
    pub precharges: u64,
    /// READ commands issued.
    pub reads: u64,
    /// WRITE commands issued.
    pub writes: u64,
    /// REFRESH commands issued.
    pub refreshes: u64,
    /// DRAM cycles during which the data bus carried a burst.
    pub data_bus_busy_cycles: u64,
    /// Rank-cycles spent in active standby (at least one open row), summed
    /// over the channel's ranks. Only populated by
    /// [`DramChannel::stats_at`]; the live counter view
    /// ([`DramChannel::stats`]) reports command counts only.
    pub active_standby_cycles: u64,
    /// Rank-cycles spent in precharge standby (CKE high, all banks closed).
    pub precharge_standby_cycles: u64,
    /// Rank-cycles spent in fast-exit power-down.
    pub power_down_fast_cycles: u64,
    /// Rank-cycles spent in slow-exit power-down.
    pub power_down_slow_cycles: u64,
    /// Rank-cycles spent in self-refresh.
    pub self_refresh_cycles: u64,
    /// Power-down entries (fast or slow, counted once per standby departure).
    pub power_down_entries: u64,
    /// Self-refresh entries.
    pub self_refresh_entries: u64,
    /// Power-down exits (wakes).
    pub power_wakes: u64,
}

impl ChannelStats {
    /// Data-bus utilization over `elapsed` DRAM cycles (0.0–1.0).
    #[must_use]
    pub fn bus_utilization(&self, elapsed: DramCycles) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.data_bus_busy_cycles as f64 / elapsed as f64
        }
    }

    /// Bytes transferred on the data bus assuming `column_bytes` per burst.
    #[must_use]
    pub fn bytes_transferred(&self, column_bytes: u64) -> u64 {
        (self.reads + self.writes) * column_bytes
    }

    /// Total rank-cycles accounted across all power states. Equals
    /// `elapsed_cycles * rank_count` when read through
    /// [`DramChannel::stats_at`].
    #[must_use]
    pub fn state_residency_cycles(&self) -> u64 {
        self.active_standby_cycles
            + self.precharge_standby_cycles
            + self.power_down_fast_cycles
            + self.power_down_slow_cycles
            + self.self_refresh_cycles
    }

    /// Rank-cycles spent in any CKE-low state (power-down or self-refresh).
    #[must_use]
    pub fn powered_down_cycles(&self) -> u64 {
        self.power_down_fast_cycles + self.power_down_slow_cycles + self.self_refresh_cycles
    }

    /// Adds every counter of `other` into `self` (aggregation across
    /// channels or shards).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.data_bus_busy_cycles += other.data_bus_busy_cycles;
        self.active_standby_cycles += other.active_standby_cycles;
        self.precharge_standby_cycles += other.precharge_standby_cycles;
        self.power_down_fast_cycles += other.power_down_fast_cycles;
        self.power_down_slow_cycles += other.power_down_slow_cycles;
        self.self_refresh_cycles += other.self_refresh_cycles;
        self.power_down_entries += other.power_down_entries;
        self.self_refresh_entries += other.self_refresh_entries;
        self.power_wakes += other.power_wakes;
    }

    /// Serializes every counter (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.u64(self.activates);
        w.u64(self.precharges);
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.refreshes);
        w.u64(self.data_bus_busy_cycles);
        w.u64(self.active_standby_cycles);
        w.u64(self.precharge_standby_cycles);
        w.u64(self.power_down_fast_cycles);
        w.u64(self.power_down_slow_cycles);
        w.u64(self.self_refresh_cycles);
        w.u64(self.power_down_entries);
        w.u64(self.self_refresh_entries);
        w.u64(self.power_wakes);
    }

    /// Restores every counter from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        self.activates = r.u64()?;
        self.precharges = r.u64()?;
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.refreshes = r.u64()?;
        self.data_bus_busy_cycles = r.u64()?;
        self.active_standby_cycles = r.u64()?;
        self.precharge_standby_cycles = r.u64()?;
        self.power_down_fast_cycles = r.u64()?;
        self.power_down_slow_cycles = r.u64()?;
        self.self_refresh_cycles = r.u64()?;
        self.power_down_entries = r.u64()?;
        self.self_refresh_entries = r.u64()?;
        self.power_wakes = r.u64()?;
        Ok(())
    }

    /// Field-wise `self - start`: the counters accumulated over a
    /// measurement window whose beginning was snapshotted as `start`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `start` exceeds the
    /// corresponding counter of `self` (counters are monotone).
    #[must_use]
    pub fn delta(&self, start: &ChannelStats) -> ChannelStats {
        ChannelStats {
            activates: self.activates - start.activates,
            precharges: self.precharges - start.precharges,
            reads: self.reads - start.reads,
            writes: self.writes - start.writes,
            refreshes: self.refreshes - start.refreshes,
            data_bus_busy_cycles: self.data_bus_busy_cycles - start.data_bus_busy_cycles,
            active_standby_cycles: self.active_standby_cycles - start.active_standby_cycles,
            precharge_standby_cycles: self.precharge_standby_cycles
                - start.precharge_standby_cycles,
            power_down_fast_cycles: self.power_down_fast_cycles - start.power_down_fast_cycles,
            power_down_slow_cycles: self.power_down_slow_cycles - start.power_down_slow_cycles,
            self_refresh_cycles: self.self_refresh_cycles - start.self_refresh_cycles,
            power_down_entries: self.power_down_entries - start.power_down_entries,
            self_refresh_entries: self.self_refresh_entries - start.self_refresh_entries,
            power_wakes: self.power_wakes - start.power_wakes,
        }
    }
}

/// Cycle-accurate model of one DRAM channel (ranks, banks, buses).
///
/// # Examples
///
/// ```
/// use cloudmc_dram::{Command, DramChannel, DramConfig, Location};
///
/// let cfg = DramConfig::baseline();
/// let mut ch = DramChannel::new(&cfg);
/// let loc = Location::new(0, 0, 100, 3);
///
/// assert!(ch.can_issue(&Command::activate(loc), 0));
/// ch.issue(&Command::activate(loc), 0);
/// let ready = cfg.timing.t_rcd;
/// assert!(ch.can_issue(&Command::read(loc, false), ready));
/// let outcome = ch.issue(&Command::read(loc, false), ready);
/// assert_eq!(outcome.completion_cycle, ready + cfg.timing.cl + cfg.timing.t_burst);
/// ```
#[derive(Debug, Clone)]
pub struct DramChannel {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    timing: TimingParams,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    banks_per_rank: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    rows_per_bank: u64,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    columns_per_row: u64,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    refresh_enabled: bool,
    ranks: Vec<Rank>,
    /// Cycle at which the data bus becomes free after the last burst.
    bus_free_at: DramCycles,
    last_burst_rank: Option<usize>,
    last_burst_direction: Option<BusDirection>,
    /// Cycle of the most recent command on the command bus.
    last_cmd_cycle: Option<DramCycles>,
    stats: ChannelStats,
}

impl DramChannel {
    /// Builds one channel according to `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not validate.
    #[must_use]
    pub fn new(config: &DramConfig) -> Self {
        config
            .validate()
            // simlint: allow(panic) documented constructor contract: config must validate
            .expect("invalid DRAM configuration passed to DramChannel::new");
        Self {
            timing: config.timing,
            banks_per_rank: config.banks_per_rank,
            rows_per_bank: config.rows_per_bank,
            columns_per_row: config.columns_per_row(),
            refresh_enabled: config.refresh_enabled,
            ranks: (0..config.ranks_per_channel)
                .map(|_| Rank::new(config.banks_per_rank, &config.timing))
                .collect(),
            bus_free_at: 0,
            last_burst_rank: None,
            last_burst_direction: None,
            last_cmd_cycle: None,
            stats: ChannelStats::default(),
        }
    }

    /// Timing parameters in effect.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Number of ranks on this channel.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Number of banks per rank.
    #[must_use]
    pub fn banks_per_rank(&self) -> usize {
        self.banks_per_rank
    }

    /// Event counters collected so far (command counts only; the power-state
    /// residency fields are zero — use [`Self::stats_at`] for those).
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Event counters plus power-state residency accrued up to `now`.
    ///
    /// Residency is read in closed form from each rank's transition history,
    /// so the result is exact — and bit-identical between a cycle-by-cycle
    /// run and a fast-forwarding run — at any observation cycle. The
    /// residency fields sum to `now * rank_count`.
    #[must_use]
    pub fn stats_at(&self, now: DramCycles) -> ChannelStats {
        let mut stats = self.stats;
        for rank in &self.ranks {
            let r = rank.residency_at(now);
            stats.active_standby_cycles += r.active_standby;
            stats.precharge_standby_cycles += r.precharge_standby;
            stats.power_down_fast_cycles += r.power_down_fast;
            stats.power_down_slow_cycles += r.power_down_slow;
            stats.self_refresh_cycles += r.self_refresh;
            stats.power_down_entries += rank.power_down_entries();
            stats.self_refresh_entries += rank.self_refresh_entries();
            stats.power_wakes += rank.power_wakes();
        }
        stats
    }

    /// Row currently open in (`rank`, `bank`), if any.
    ///
    /// # Panics
    ///
    /// Panics if the rank or bank index is out of range.
    #[must_use]
    pub fn open_row(&self, rank: usize, bank: usize) -> Option<u64> {
        self.ranks[rank].bank(bank).open_row()
    }

    /// Number of column accesses the open row of (`rank`, `bank`) has served.
    #[must_use]
    pub fn accesses_since_activate(&self, rank: usize, bank: usize) -> u64 {
        self.ranks[rank].bank(bank).accesses_since_activate()
    }

    /// Immutable access to a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn rank(&self, rank: usize) -> &Rank {
        &self.ranks[rank]
    }

    /// The first rank with an overdue refresh, if refresh is enabled.
    #[must_use]
    pub fn refresh_due(&self, now: DramCycles) -> Option<usize> {
        if !self.refresh_enabled {
            return None;
        }
        self.ranks.iter().position(|r| r.refresh_due(now))
    }

    /// How many refresh intervals rank `rank` is behind schedule at `now`.
    #[must_use]
    pub fn refresh_backlog(&self, rank: usize, now: DramCycles) -> u64 {
        if !self.refresh_enabled
            || self.ranks[rank].in_self_refresh()
            || now < self.ranks[rank].next_refresh_due()
        {
            0
        } else {
            (now - self.ranks[rank].next_refresh_due()) / self.timing.t_refi + 1
        }
    }

    /// Serializes the channel's mutable state: every rank, the data-bus
    /// bookkeeping and the event counters (checkpoint support). Geometry and
    /// timing are config-derived and not serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("dram-channel");
        for rank in &self.ranks {
            rank.save_state(w);
        }
        w.u64(self.bus_free_at);
        match self.last_burst_rank {
            None => w.u8(0),
            Some(rank) => {
                w.u8(1);
                w.usize(rank);
            }
        }
        w.u8(match self.last_burst_direction {
            None => 0,
            Some(BusDirection::Read) => 1,
            Some(BusDirection::Write) => 2,
        });
        match self.last_cmd_cycle {
            None => w.u8(0),
            Some(cycle) => {
                w.u8(1);
                w.u64(cycle);
            }
        }
        self.stats.save_state(w);
    }

    /// Restores the channel's mutable state from a checkpoint. The channel
    /// must have been built from the same configuration as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or
    /// impossible values.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("dram-channel")?;
        for rank in &mut self.ranks {
            rank.load_state(r)?;
        }
        self.bus_free_at = r.u64()?;
        self.last_burst_rank = match r.u8()? {
            0 => None,
            1 => {
                let rank = r.usize()?;
                if rank >= self.ranks.len() {
                    return Err(r.bad_value(format!("last burst rank {rank} out of range")));
                }
                Some(rank)
            }
            other => return Err(r.bad_value(format!("option tag {other}"))),
        };
        self.last_burst_direction = match r.u8()? {
            0 => None,
            1 => Some(BusDirection::Read),
            2 => Some(BusDirection::Write),
            other => return Err(r.bad_value(format!("bus direction discriminant {other}"))),
        };
        self.last_cmd_cycle = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            other => return Err(r.bad_value(format!("option tag {other}"))),
        };
        self.stats.load_state(r)?;
        Ok(())
    }

    fn check_location(&self, loc: &Location) {
        assert!(
            loc.rank < self.ranks.len(),
            "rank {} out of range ({} ranks)",
            loc.rank,
            self.ranks.len()
        );
        assert!(
            loc.bank < self.banks_per_rank,
            "bank {} out of range ({} banks per rank)",
            loc.bank,
            self.banks_per_rank
        );
        assert!(
            loc.row < self.rows_per_bank,
            "row {} out of range ({} rows per bank)",
            loc.row,
            self.rows_per_bank
        );
        assert!(
            loc.column < self.columns_per_row,
            "column {} out of range ({} columns per row)",
            loc.column,
            self.columns_per_row
        );
    }

    /// Earliest cycle at which a column command issued now-or-later could
    /// start its data burst without colliding on the data bus.
    fn data_bus_ready(&self, rank: usize, dir: BusDirection) -> DramCycles {
        let mut ready = self.bus_free_at;
        let switching_rank = self.last_burst_rank.is_some_and(|r| r != rank);
        let switching_dir = self.last_burst_direction.is_some_and(|d| d != dir);
        if switching_rank || switching_dir {
            ready += self.timing.t_rtrs;
        }
        ready
    }

    /// Whether this channel issues periodic refresh at all.
    #[must_use]
    pub fn refresh_enabled(&self) -> bool {
        self.refresh_enabled
    }

    /// Current CKE power state of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn power_state(&self, rank: usize) -> PowerState {
        self.ranks[rank].power_state()
    }

    /// Whether `rank` may enter (or deepen into) the low-power state `mode`
    /// at `now`: the rank quiet, all banks precharged, the `tCKE` fence
    /// honored, and — for fast/slow power-down — no refresh overdue (the
    /// controller would have to wake it right back up; self-refresh is exempt
    /// because the on-die engine takes the obligation over).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn can_enter_power_down(&self, rank: usize, mode: PowerDownMode, now: DramCycles) -> bool {
        if self.refresh_enabled
            && mode != PowerDownMode::SelfRefresh
            && self.ranks[rank].refresh_due(now)
        {
            return false;
        }
        self.ranks[rank].can_enter_power_down(mode, now)
    }

    /// Earliest cycle `rank` could enter a low-power state, assuming the
    /// device state stays frozen (quiet window plus the `tCKE` fence).
    #[must_use]
    pub fn earliest_power_down(&self, rank: usize) -> DramCycles {
        self.ranks[rank].earliest_power_down()
    }

    /// Drops CKE for `rank`, entering the low-power state `mode` at `now`.
    ///
    /// CKE is a dedicated pin, so entry does not occupy the command bus.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not legal; check
    /// [`Self::can_enter_power_down`] first.
    pub fn enter_power_down(&mut self, rank: usize, mode: PowerDownMode, now: DramCycles) {
        assert!(
            self.can_enter_power_down(rank, mode, now),
            "illegal power-down entry of rank {rank} to {mode:?} at {now}"
        );
        let t = self.timing;
        self.ranks[rank].enter_power_down(mode, now, &t);
    }

    /// Raises CKE for `rank` at `now`, beginning the exit from its low-power
    /// state. Returns the cycle at which the rank accepts commands again.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not powered down.
    pub fn wake_rank(&mut self, rank: usize, now: DramCycles) -> DramCycles {
        let t = self.timing;
        self.ranks[rank].wake(now, &t)
    }

    /// Earliest cycle at which `cmd` could legally issue, assuming no other
    /// command is issued in the meantime (the device state stays frozen).
    ///
    /// Returns `None` when no passage of time can make the command legal from
    /// the current state — e.g. a column access to a row that is not open, a
    /// precharge of an idle bank, or any command to a powered-down rank
    /// (which stays asleep until an explicit wake, itself a state change).
    /// The one-command-per-cycle command-bus rule is deliberately ignored: it
    /// constrains only the cycle of the most recent issue, which the caller
    /// (the kernel's event-horizon scan) never revisits. Under that caveat,
    /// `can_issue(cmd, t)` holds exactly for `t >= earliest_legal(cmd)` while
    /// the state stays frozen, which is what lets the simulation kernel jump
    /// over provably dead cycles.
    ///
    /// # Panics
    ///
    /// Panics if the command's location is outside the configured geometry.
    #[must_use]
    pub fn earliest_legal(&self, cmd: &Command) -> Option<DramCycles> {
        self.check_location(&cmd.loc);
        let rank = &self.ranks[cmd.loc.rank];
        if rank.powered_down() {
            return None;
        }
        let bank = rank.bank(cmd.loc.bank);
        let t = &self.timing;
        match cmd.kind {
            CommandKind::Activate => bank.open_row().is_none().then(|| {
                bank.next_activate_allowed()
                    .max(rank.next_activate_allowed(t))
            }),
            CommandKind::Read { .. } => (bank.open_row() == Some(cmd.loc.row)).then(|| {
                let bus = self
                    .data_bus_ready(cmd.loc.rank, BusDirection::Read)
                    .saturating_sub(t.cl);
                bank.next_read_allowed()
                    .max(rank.next_read_allowed())
                    .max(bus)
            }),
            CommandKind::Write { .. } => (bank.open_row() == Some(cmd.loc.row)).then(|| {
                let bus = self
                    .data_bus_ready(cmd.loc.rank, BusDirection::Write)
                    .saturating_sub(t.cwl);
                bank.next_write_allowed()
                    .max(rank.next_write_allowed())
                    .max(bus)
            }),
            CommandKind::Precharge => bank
                .open_row()
                .is_some()
                .then(|| bank.next_precharge_allowed()),
            CommandKind::Refresh => {
                (self.refresh_enabled && rank.all_banks_idle()).then(|| rank.next_refresh_allowed())
            }
        }
    }

    /// Whether `cmd` may legally issue at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the command's location is outside the configured geometry.
    #[must_use]
    pub fn can_issue(&self, cmd: &Command, now: DramCycles) -> bool {
        self.check_location(&cmd.loc);
        if self.last_cmd_cycle == Some(now) {
            return false;
        }
        let rank = &self.ranks[cmd.loc.rank];
        if rank.powered_down() {
            return false;
        }
        let bank = rank.bank(cmd.loc.bank);
        let t = &self.timing;
        match cmd.kind {
            CommandKind::Activate => bank.can_activate(now) && rank.can_activate(now, t),
            CommandKind::Read { .. } => {
                bank.can_access(cmd.loc.row, false, now)
                    && rank.can_read(now)
                    && now + t.cl >= self.data_bus_ready(cmd.loc.rank, BusDirection::Read)
            }
            CommandKind::Write { .. } => {
                bank.can_access(cmd.loc.row, true, now)
                    && rank.can_write(now)
                    && now + t.cwl >= self.data_bus_ready(cmd.loc.rank, BusDirection::Write)
            }
            CommandKind::Precharge => bank.can_precharge(now),
            CommandKind::Refresh => {
                rank.all_banks_idle() && self.refresh_enabled && now >= rank.next_refresh_allowed()
            }
        }
    }

    /// Issues `cmd` at cycle `now`.
    ///
    /// Returns the completion information (data return time for reads, burst
    /// completion for writes, availability times otherwise).
    ///
    /// # Panics
    ///
    /// Panics if the command is not legal at `now`; use [`Self::can_issue`]
    /// first. This is deliberate: an illegal command indicates a scheduler
    /// bug, and silently delaying it would corrupt the measured timings.
    pub fn issue(&mut self, cmd: &Command, now: DramCycles) -> IssueOutcome {
        assert!(
            self.can_issue(cmd, now),
            "illegal command {} to {:?} at cycle {now}",
            cmd.kind,
            cmd.loc
        );
        self.last_cmd_cycle = Some(now);
        let t = self.timing;
        let rank_idx = cmd.loc.rank;
        let outcome = match cmd.kind {
            CommandKind::Activate => {
                self.ranks[rank_idx].record_activate(now, &t);
                self.ranks[rank_idx]
                    .bank_mut(cmd.loc.bank)
                    .activate(cmd.loc.row, now, &t);
                self.stats.activates += 1;
                IssueOutcome {
                    completion_cycle: now + t.t_rcd,
                    row_hit: false,
                }
            }
            CommandKind::Read { auto_precharge } => {
                let done = self.ranks[rank_idx].bank_mut(cmd.loc.bank).read(
                    cmd.loc.row,
                    now,
                    auto_precharge,
                    &t,
                );
                self.ranks[rank_idx].record_read(now, &t);
                self.stats.reads += 1;
                if auto_precharge {
                    self.stats.precharges += 1;
                    let pre_done = self.ranks[rank_idx]
                        .bank(cmd.loc.bank)
                        .next_activate_allowed();
                    self.ranks[rank_idx].note_quiet_until(pre_done);
                }
                self.stats.data_bus_busy_cycles += t.t_burst;
                self.bus_free_at = done;
                self.last_burst_rank = Some(rank_idx);
                self.last_burst_direction = Some(BusDirection::Read);
                IssueOutcome {
                    completion_cycle: done,
                    row_hit: true,
                }
            }
            CommandKind::Write { auto_precharge } => {
                let done = self.ranks[rank_idx].bank_mut(cmd.loc.bank).write(
                    cmd.loc.row,
                    now,
                    auto_precharge,
                    &t,
                );
                self.ranks[rank_idx].record_write(now, &t);
                self.stats.writes += 1;
                if auto_precharge {
                    self.stats.precharges += 1;
                    let pre_done = self.ranks[rank_idx]
                        .bank(cmd.loc.bank)
                        .next_activate_allowed();
                    self.ranks[rank_idx].note_quiet_until(pre_done);
                }
                self.stats.data_bus_busy_cycles += t.t_burst;
                self.bus_free_at = done;
                self.last_burst_rank = Some(rank_idx);
                self.last_burst_direction = Some(BusDirection::Write);
                IssueOutcome {
                    completion_cycle: done,
                    row_hit: true,
                }
            }
            CommandKind::Precharge => {
                self.ranks[rank_idx]
                    .bank_mut(cmd.loc.bank)
                    .precharge(now, &t);
                self.ranks[rank_idx].record_precharge(now, &t);
                self.stats.precharges += 1;
                IssueOutcome {
                    completion_cycle: now + t.t_rp,
                    row_hit: false,
                }
            }
            CommandKind::Refresh => {
                let done = self.ranks[rank_idx].refresh(now, &t);
                self.stats.refreshes += 1;
                IssueOutcome {
                    completion_cycle: done,
                    row_hit: false,
                }
            }
        };
        // Keep the rank's standby power state in sync with its row-buffer
        // state (residency accrues in closed form at this transition point).
        self.ranks[rank_idx].update_standby(now);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> (DramChannel, DramConfig) {
        let cfg = DramConfig::baseline();
        (DramChannel::new(&cfg), cfg)
    }

    #[test]
    fn read_requires_open_row() {
        let (mut ch, cfg) = channel();
        let loc = Location::new(0, 0, 5, 0);
        assert!(!ch.can_issue(&Command::read(loc, false), 0));
        ch.issue(&Command::activate(loc), 0);
        assert!(!ch.can_issue(&Command::read(loc, false), cfg.timing.t_rcd - 1));
        assert!(ch.can_issue(&Command::read(loc, false), cfg.timing.t_rcd));
    }

    #[test]
    fn row_conflict_needs_precharge_then_activate() {
        let (mut ch, cfg) = channel();
        let t = cfg.timing;
        let loc_a = Location::new(0, 0, 5, 0);
        let loc_b = Location::new(0, 0, 9, 0);
        ch.issue(&Command::activate(loc_a), 0);
        ch.issue(&Command::read(loc_a, false), t.t_rcd);
        // Different row cannot be read while row 5 is open.
        assert!(!ch.can_issue(&Command::read(loc_b, false), t.t_rcd + 100));
        assert!(!ch.can_issue(&Command::activate(loc_b), t.t_rcd + 100));
        let pre_at = t.t_ras;
        assert!(ch.can_issue(&Command::precharge(loc_a), pre_at));
        ch.issue(&Command::precharge(loc_a), pre_at);
        let act_at = t.t_rc.max(pre_at + t.t_rp);
        assert!(ch.can_issue(&Command::activate(loc_b), act_at));
    }

    #[test]
    fn command_bus_allows_one_command_per_cycle() {
        let (mut ch, _) = channel();
        let a = Location::new(0, 0, 1, 0);
        let b = Location::new(0, 1, 1, 0);
        ch.issue(&Command::activate(a), 10);
        assert!(!ch.can_issue(&Command::activate(b), 10));
        // tRRD = 5 delays the second activate anyway.
        assert!(ch.can_issue(&Command::activate(b), 15));
    }

    #[test]
    fn bank_level_parallelism_across_ranks_ignores_trrd() {
        let (mut ch, _) = channel();
        let a = Location::new(0, 0, 1, 0);
        let b = Location::new(1, 0, 1, 0);
        ch.issue(&Command::activate(a), 10);
        // Different rank: no tRRD coupling, only the command bus cycle.
        assert!(ch.can_issue(&Command::activate(b), 11));
    }

    #[test]
    fn data_bus_serializes_reads_from_different_ranks() {
        let (mut ch, cfg) = channel();
        let t = cfg.timing;
        let a = Location::new(0, 0, 1, 0);
        let b = Location::new(1, 0, 1, 0);
        ch.issue(&Command::activate(a), 0);
        ch.issue(&Command::activate(b), 1);
        let read_a_at = t.t_rcd;
        let out_a = ch.issue(&Command::read(a, false), read_a_at);
        // A read on the other rank must respect the bus + tRTRS gap.
        let mut cycle = read_a_at + 1;
        while !ch.can_issue(&Command::read(b, false), cycle) {
            cycle += 1;
        }
        assert!(cycle + t.cl >= out_a.completion_cycle + t.t_rtrs);
    }

    #[test]
    fn write_then_read_same_rank_waits_for_twtr() {
        let (mut ch, cfg) = channel();
        let t = cfg.timing;
        let loc = Location::new(0, 0, 1, 0);
        let loc2 = Location::new(0, 1, 1, 0);
        ch.issue(&Command::activate(loc), 0);
        ch.issue(&Command::activate(loc2), t.t_rrd);
        let wr_at = t.t_rcd + t.t_rrd;
        ch.issue(&Command::write(loc, false), wr_at);
        let earliest_read = wr_at + t.write_to_read_same_rank();
        assert!(!ch.can_issue(&Command::read(loc2, false), earliest_read - 1));
        assert!(ch.can_issue(&Command::read(loc2, false), earliest_read));
    }

    #[test]
    fn refresh_requires_idle_banks_and_blocks_rank() {
        let (mut ch, cfg) = channel();
        let t = cfg.timing;
        let loc = Location::new(0, 0, 1, 0);
        ch.issue(&Command::activate(loc), 0);
        assert!(!ch.can_issue(&Command::refresh(0), t.t_refi));
        ch.issue(&Command::precharge(loc), t.t_ras);
        let out = ch.issue(&Command::refresh(0), t.t_refi);
        assert_eq!(out.completion_cycle, t.t_refi + t.t_rfc);
        assert!(!ch.can_issue(&Command::activate(loc), t.t_refi + 1));
        assert!(ch.can_issue(&Command::activate(loc), out.completion_cycle));
        assert_eq!(ch.stats().refreshes, 1);
    }

    #[test]
    fn refresh_due_reports_rank_and_backlog() {
        let (ch, cfg) = channel();
        let t = cfg.timing;
        assert_eq!(ch.refresh_due(t.t_refi - 1), None);
        assert_eq!(ch.refresh_due(t.t_refi), Some(0));
        assert_eq!(ch.refresh_backlog(0, t.t_refi * 3), 3);
    }

    #[test]
    fn refresh_disabled_never_due() {
        let mut cfg = DramConfig::baseline();
        cfg.refresh_enabled = false;
        let ch = DramChannel::new(&cfg);
        assert_eq!(ch.refresh_due(u64::MAX / 2), None);
        assert_eq!(ch.refresh_backlog(0, u64::MAX / 2), 0);
    }

    #[test]
    fn stats_count_commands_and_bus_cycles() {
        let (mut ch, cfg) = channel();
        let t = cfg.timing;
        let loc = Location::new(0, 0, 1, 0);
        ch.issue(&Command::activate(loc), 0);
        ch.issue(&Command::read(loc, false), t.t_rcd);
        ch.issue(&Command::read(loc, false), t.t_rcd + t.t_ccd);
        ch.issue(&Command::write(loc, false), t.t_rcd + 4 * t.t_ccd);
        let s = ch.stats();
        assert_eq!(s.activates, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.data_bus_busy_cycles, 3 * t.t_burst);
        assert_eq!(s.bytes_transferred(64), 3 * 64);
        assert!(s.bus_utilization(1000) > 0.0);
        assert_eq!(ChannelStats::default().bus_utilization(0), 0.0);
    }

    #[test]
    fn auto_precharge_counts_as_precharge() {
        let (mut ch, cfg) = channel();
        let t = cfg.timing;
        let loc = Location::new(0, 0, 1, 0);
        ch.issue(&Command::activate(loc), 0);
        ch.issue(&Command::read(loc, true), t.t_rcd + t.t_ras);
        assert_eq!(ch.stats().precharges, 1);
        assert_eq!(ch.open_row(0, 0), None);
    }

    /// `earliest_legal` must be the exact boundary of `can_issue` for a
    /// frozen device state (ignoring the one-command-per-cycle rule, which is
    /// sidestepped by probing cycles after the last issue).
    fn assert_earliest_matches(ch: &DramChannel, cmd: &Command, probe_from: DramCycles) {
        match ch.earliest_legal(cmd) {
            Some(earliest) => {
                let start = earliest.max(probe_from);
                if earliest > probe_from {
                    assert!(
                        !ch.can_issue(cmd, earliest - 1),
                        "{} legal one cycle before earliest_legal ({earliest})",
                        cmd.kind
                    );
                }
                assert!(
                    ch.can_issue(cmd, start),
                    "{} not legal at earliest_legal ({start})",
                    cmd.kind
                );
            }
            None => {
                for t in probe_from..probe_from + 2_000 {
                    assert!(
                        !ch.can_issue(cmd, t),
                        "{} became legal at {t} despite earliest_legal = None",
                        cmd.kind
                    );
                }
            }
        }
    }

    #[test]
    fn earliest_legal_matches_can_issue_boundaries() {
        let (mut ch, cfg) = channel();
        let t = cfg.timing;
        let a = Location::new(0, 0, 5, 0);
        let other_row = Location::new(0, 0, 9, 0);
        let b = Location::new(1, 2, 7, 0);

        // Idle bank: activate legal immediately, column/precharge never.
        assert_earliest_matches(&ch, &Command::activate(a), 1);
        assert_eq!(ch.earliest_legal(&Command::read(a, false)), None);
        assert_eq!(ch.earliest_legal(&Command::precharge(a)), None);
        assert_earliest_matches(&ch, &Command::refresh(0), 1);

        // Open a row and exercise every boundary: tRCD for the column
        // access, tRAS for the precharge, tRC for the re-activate.
        ch.issue(&Command::activate(a), 0);
        assert_earliest_matches(&ch, &Command::read(a, false), 1);
        assert_earliest_matches(&ch, &Command::write(a, false), 1);
        assert_earliest_matches(&ch, &Command::precharge(a), 1);
        assert_eq!(ch.earliest_legal(&Command::activate(a)), None);
        assert_eq!(ch.earliest_legal(&Command::read(other_row, false)), None);
        assert_eq!(ch.earliest_legal(&Command::refresh(0)), None);

        // After a read, the other rank's activate only waits on its own
        // constraints while a same-rank activate is fenced by tRC.
        ch.issue(&Command::read(a, false), t.t_rcd);
        assert_earliest_matches(&ch, &Command::activate(b), t.t_rcd + 1);
        assert_earliest_matches(&ch, &Command::precharge(a), t.t_rcd + 1);

        // Cross-rank read: the data-bus + tRTRS gap must be the boundary.
        ch.issue(&Command::activate(b), t.t_rcd + 1);
        assert_earliest_matches(&ch, &Command::read(b, false), t.t_rcd + 2);

        // Write-to-read turnaround on the same rank.
        let wr_at = ch
            .earliest_legal(&Command::write(b, false))
            .unwrap()
            .max(t.t_rcd + 2);
        ch.issue(&Command::write(b, false), wr_at);
        assert_earliest_matches(&ch, &Command::read(b, false), wr_at + 1);
    }

    #[test]
    fn earliest_legal_refresh_requires_idle_banks_and_enabled_refresh() {
        let mut cfg = DramConfig::baseline();
        cfg.refresh_enabled = false;
        let ch = DramChannel::new(&cfg);
        assert!(!ch.refresh_enabled());
        assert_eq!(ch.earliest_legal(&Command::refresh(0)), None);
        let (ch2, _) = channel();
        assert!(ch2.refresh_enabled());
        assert_eq!(ch2.earliest_legal(&Command::refresh(0)), Some(0));
    }

    #[test]
    #[should_panic(expected = "rank 5 out of range")]
    fn out_of_range_rank_panics() {
        let (ch, _) = channel();
        let loc = Location::new(5, 0, 0, 0);
        let _ = ch.can_issue(&Command::activate(loc), 0);
    }

    #[test]
    #[should_panic(expected = "illegal command")]
    fn issuing_illegal_command_panics() {
        let (mut ch, _) = channel();
        let loc = Location::new(0, 0, 1, 0);
        ch.issue(&Command::read(loc, false), 0);
    }
}
