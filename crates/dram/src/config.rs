//! DRAM organization (geometry) configuration.

use crate::timing::TimingParams;

/// Physical organization of the off-chip DRAM attached to one controller.
///
/// The paper's baseline (Table 2) uses one channel with 2 ranks of 8 banks
/// each, an 8 KB row buffer and 64 B cache blocks, DDR3-1600 timings.
///
/// # Examples
///
/// ```
/// use cloudmc_dram::DramConfig;
///
/// let cfg = DramConfig::baseline();
/// assert_eq!(cfg.channels, 1);
/// assert_eq!(cfg.banks_per_rank, 8);
/// assert_eq!(cfg.row_bytes, 8 * 1024);
/// assert!(cfg.capacity_bytes() >= 32 * (1u64 << 30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Size of one column access in bytes (one cache block transferred per
    /// READ/WRITE burst).
    pub column_bytes: u64,
    /// Timing parameters of the devices.
    pub timing: TimingParams,
    /// Whether periodic refresh is modeled.
    pub refresh_enabled: bool,
}

impl DramConfig {
    /// The paper's baseline single-channel configuration (Table 2).
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            channels: 1,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            // 2 ranks x 8 banks x 262144 rows x 8KB row = 32 GiB per channel.
            rows_per_bank: 256 * 1024,
            row_bytes: 8 * 1024,
            column_bytes: 64,
            timing: TimingParams::ddr3_1600(),
            refresh_enabled: true,
        }
    }

    /// Baseline organization with a different number of channels
    /// (the multi-channel study of Section 4.3).
    #[must_use]
    pub fn with_channels(channels: usize) -> Self {
        Self {
            channels,
            ..Self::baseline()
        }
    }

    /// Number of column (cache-block) slots per row buffer.
    #[must_use]
    pub fn columns_per_row(&self) -> u64 {
        self.row_bytes / self.column_bytes
    }

    /// Total banks per channel.
    #[must_use]
    pub fn banks_per_channel(&self) -> usize {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Total addressable capacity across all channels in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks_per_channel as u64
            * self.banks_per_rank as u64
            * self.rows_per_bank
            * self.row_bytes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if any dimension is zero, any
    /// dimension is not a power of two (required by the bit-sliced address
    /// mapping), or the timing parameters are inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        fn pow2(name: &str, v: u64) -> Result<(), String> {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
            if !v.is_power_of_two() {
                return Err(format!("{name} ({v}) must be a power of two"));
            }
            Ok(())
        }
        pow2("channels", self.channels as u64)?;
        pow2("ranks_per_channel", self.ranks_per_channel as u64)?;
        pow2("banks_per_rank", self.banks_per_rank as u64)?;
        pow2("rows_per_bank", self.rows_per_bank)?;
        pow2("row_bytes", self.row_bytes)?;
        pow2("column_bytes", self.column_bytes)?;
        if self.column_bytes > self.row_bytes {
            return Err(format!(
                "column_bytes ({}) must not exceed row_bytes ({})",
                self.column_bytes, self.row_bytes
            ));
        }
        self.timing.validate()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Physical location of a column access within one channel.
///
/// The channel index itself is resolved by the memory controller's address
/// mapping before the request reaches the device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (cache-block) index within the row.
    pub column: u64,
}

impl Location {
    /// Creates a new location.
    #[must_use]
    pub fn new(rank: usize, bank: usize, row: u64, column: u64) -> Self {
        Self {
            rank,
            bank,
            row,
            column,
        }
    }

    /// Flat bank index within the channel (`rank * banks_per_rank + bank`).
    #[must_use]
    pub fn flat_bank(&self, banks_per_rank: usize) -> usize {
        self.rank * banks_per_rank + self.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let cfg = DramConfig::baseline();
        assert_eq!(cfg.channels, 1);
        assert_eq!(cfg.ranks_per_channel, 2);
        assert_eq!(cfg.banks_per_rank, 8);
        assert_eq!(cfg.row_bytes, 8192);
        // 32-64 GB range from Table 2.
        let gib = cfg.capacity_bytes() / (1 << 30);
        assert!((32..=64).contains(&gib), "capacity {gib} GiB");
        cfg.validate().unwrap();
    }

    #[test]
    fn with_channels_scales_capacity() {
        let one = DramConfig::with_channels(1);
        let four = DramConfig::with_channels(4);
        assert_eq!(four.capacity_bytes(), 4 * one.capacity_bytes());
        four.validate().unwrap();
    }

    #[test]
    fn columns_per_row_is_128_for_baseline() {
        assert_eq!(DramConfig::baseline().columns_per_row(), 128);
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut cfg = DramConfig::baseline();
        cfg.banks_per_rank = 6;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_column_larger_than_row() {
        let mut cfg = DramConfig::baseline();
        cfg.column_bytes = cfg.row_bytes * 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn flat_bank_combines_rank_and_bank() {
        let loc = Location::new(1, 3, 7, 9);
        assert_eq!(loc.flat_bank(8), 11);
    }
}
