//! Per-bank state machine and timing bookkeeping.

use crate::timing::{DramCycles, TimingParams};

/// The row-buffer state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankState {
    /// All rows closed; the bank can accept an ACTIVATE.
    Idle,
    /// A row is open in the row buffer.
    Active {
        /// Index of the open row.
        row: u64,
    },
}

/// A single DRAM bank.
///
/// The bank tracks its row-buffer state plus the earliest cycle at which each
/// command class may legally be issued to it. Rank- and channel-level
/// constraints (tRRD, tFAW, bus occupancy, turnaround) are enforced by
/// [`crate::rank::Rank`] and [`crate::channel::DramChannel`].
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    next_activate: DramCycles,
    next_read: DramCycles,
    next_write: DramCycles,
    next_precharge: DramCycles,
    /// Number of column accesses the currently/last activated row received.
    accesses_since_activate: u64,
    /// Total ACTIVATE commands issued to this bank.
    activations: u64,
}

impl Bank {
    /// Creates an idle bank with no timing restrictions.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: BankState::Idle,
            next_activate: 0,
            next_read: 0,
            next_write: 0,
            next_precharge: 0,
            accesses_since_activate: 0,
            activations: 0,
        }
    }

    /// Current row-buffer state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Number of column accesses performed on the currently open row.
    #[must_use]
    pub fn accesses_since_activate(&self) -> u64 {
        self.accesses_since_activate
    }

    /// Total number of activations this bank has performed.
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Earliest cycle an ACTIVATE may be issued (bank-level constraints only).
    #[must_use]
    pub fn next_activate_allowed(&self) -> DramCycles {
        self.next_activate
    }

    /// Earliest cycle a READ may be issued (bank-level constraints only).
    #[must_use]
    pub fn next_read_allowed(&self) -> DramCycles {
        self.next_read
    }

    /// Earliest cycle a WRITE may be issued (bank-level constraints only).
    #[must_use]
    pub fn next_write_allowed(&self) -> DramCycles {
        self.next_write
    }

    /// Earliest cycle a PRECHARGE may be issued (bank-level constraints only).
    #[must_use]
    pub fn next_precharge_allowed(&self) -> DramCycles {
        self.next_precharge
    }

    /// Whether an ACTIVATE of `row` is legal at `now` from the bank's view.
    #[must_use]
    pub fn can_activate(&self, now: DramCycles) -> bool {
        matches!(self.state, BankState::Idle) && now >= self.next_activate
    }

    /// Whether a column command to `row` is legal at `now` from the bank's view.
    #[must_use]
    pub fn can_access(&self, row: u64, is_write: bool, now: DramCycles) -> bool {
        match self.state {
            BankState::Active { row: open } if open == row => {
                if is_write {
                    now >= self.next_write
                } else {
                    now >= self.next_read
                }
            }
            _ => false,
        }
    }

    /// Whether a PRECHARGE is legal at `now` from the bank's view.
    #[must_use]
    pub fn can_precharge(&self, now: DramCycles) -> bool {
        matches!(self.state, BankState::Active { .. }) && now >= self.next_precharge
    }

    /// Applies an ACTIVATE issued at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the activate is not legal; callers must check
    /// [`Bank::can_activate`] first.
    pub fn activate(&mut self, row: u64, now: DramCycles, t: &TimingParams) {
        assert!(
            self.can_activate(now),
            "illegal ACTIVATE at {now} (bank state {:?}, next_activate {})",
            self.state,
            self.next_activate
        );
        self.state = BankState::Active { row };
        self.accesses_since_activate = 0;
        self.activations += 1;
        self.next_read = now + t.t_rcd;
        self.next_write = now + t.t_rcd;
        self.next_precharge = now + t.t_ras;
        self.next_activate = now + t.t_rc;
    }

    /// Applies a READ issued at `now`. Returns the cycle of the last data beat.
    ///
    /// # Panics
    ///
    /// Panics if the read is not legal for the open row.
    pub fn read(
        &mut self,
        row: u64,
        now: DramCycles,
        auto_precharge: bool,
        t: &TimingParams,
    ) -> DramCycles {
        assert!(
            self.can_access(row, false, now),
            "illegal READ of row {row} at {now} (state {:?})",
            self.state
        );
        self.accesses_since_activate += 1;
        self.next_read = self.next_read.max(now + t.t_ccd);
        self.next_write = self.next_write.max(now + t.t_ccd);
        self.next_precharge = self.next_precharge.max(now + t.t_rtp);
        if auto_precharge {
            let pre_start = self.next_precharge.max(now + t.t_rtp);
            self.state = BankState::Idle;
            self.next_activate = self.next_activate.max(pre_start + t.t_rp);
        }
        now + t.cl + t.t_burst
    }

    /// Applies a WRITE issued at `now`. Returns the cycle at which the write
    /// burst completes on the bus.
    ///
    /// # Panics
    ///
    /// Panics if the write is not legal for the open row.
    pub fn write(
        &mut self,
        row: u64,
        now: DramCycles,
        auto_precharge: bool,
        t: &TimingParams,
    ) -> DramCycles {
        assert!(
            self.can_access(row, true, now),
            "illegal WRITE of row {row} at {now} (state {:?})",
            self.state
        );
        self.accesses_since_activate += 1;
        self.next_read = self.next_read.max(now + t.write_to_read_same_rank());
        self.next_write = self.next_write.max(now + t.t_ccd);
        self.next_precharge = self.next_precharge.max(now + t.write_to_precharge());
        if auto_precharge {
            let pre_start = now + t.write_to_precharge();
            self.state = BankState::Idle;
            self.next_activate = self.next_activate.max(pre_start + t.t_rp);
        }
        now + t.cwl + t.t_burst
    }

    /// Applies a PRECHARGE issued at `now`. Returns the number of column
    /// accesses the closed row received since activation.
    ///
    /// # Panics
    ///
    /// Panics if the precharge is not legal.
    pub fn precharge(&mut self, now: DramCycles, t: &TimingParams) -> u64 {
        assert!(
            self.can_precharge(now),
            "illegal PRECHARGE at {now} (state {:?}, next_precharge {})",
            self.state,
            self.next_precharge
        );
        self.state = BankState::Idle;
        self.next_activate = self.next_activate.max(now + t.t_rp);
        self.accesses_since_activate
    }

    /// Blocks the bank until `cycle` (used for refresh).
    pub fn block_until(&mut self, cycle: DramCycles) {
        self.next_activate = self.next_activate.max(cycle);
        self.next_read = self.next_read.max(cycle);
        self.next_write = self.next_write.max(cycle);
        self.next_precharge = self.next_precharge.max(cycle);
    }

    /// Serializes the bank's mutable state (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        match self.state {
            BankState::Idle => w.u8(0),
            BankState::Active { row } => {
                w.u8(1);
                w.u64(row);
            }
        }
        w.u64(self.next_activate);
        w.u64(self.next_read);
        w.u64(self.next_write);
        w.u64(self.next_precharge);
        w.u64(self.accesses_since_activate);
        w.u64(self.activations);
    }

    /// Restores the bank's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or an
    /// impossible state discriminant.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        self.state = match r.u8()? {
            0 => BankState::Idle,
            1 => BankState::Active { row: r.u64()? },
            other => return Err(r.bad_value(format!("bank state discriminant {other}"))),
        };
        self.next_activate = r.u64()?;
        self.next_read = r.u64()?;
        self.next_write = r.u64()?;
        self.next_precharge = r.u64()?;
        self.accesses_since_activate = r.u64()?;
        self.activations = r.u64()?;
        Ok(())
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn new_bank_is_idle_and_unrestricted() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Idle);
        assert!(b.can_activate(0));
        assert!(!b.can_precharge(0));
        assert!(!b.can_access(0, false, 0));
    }

    #[test]
    fn activate_opens_row_and_enforces_trcd() {
        let mut b = Bank::new();
        b.activate(42, 100, &t());
        assert_eq!(b.open_row(), Some(42));
        assert!(!b.can_access(42, false, 100 + 10));
        assert!(b.can_access(42, false, 100 + 11));
        // Another row never hits.
        assert!(!b.can_access(43, false, 100 + 11));
    }

    #[test]
    fn precharge_respects_tras_and_trp() {
        let mut b = Bank::new();
        let tp = t();
        b.activate(1, 0, &tp);
        assert!(!b.can_precharge(tp.t_ras - 1));
        assert!(b.can_precharge(tp.t_ras));
        b.precharge(tp.t_ras, &tp);
        assert_eq!(b.state(), BankState::Idle);
        // tRC dominates tRAS + tRP for DDR3-1600.
        assert!(!b.can_activate(tp.t_ras + tp.t_rp - 1));
        assert!(b.can_activate(tp.t_rc));
    }

    #[test]
    fn read_pushes_out_precharge_by_trtp() {
        let mut b = Bank::new();
        let tp = t();
        b.activate(1, 0, &tp);
        let done = b.read(1, 20, false, &tp);
        assert_eq!(done, 20 + tp.cl + tp.t_burst);
        assert!(b.next_precharge_allowed() >= 20 + tp.t_rtp);
        assert_eq!(b.accesses_since_activate(), 1);
    }

    #[test]
    fn write_pushes_out_precharge_by_write_recovery() {
        let mut b = Bank::new();
        let tp = t();
        b.activate(1, 0, &tp);
        let done = b.write(1, 20, false, &tp);
        assert_eq!(done, 20 + tp.cwl + tp.t_burst);
        assert_eq!(b.next_precharge_allowed(), 20 + tp.write_to_precharge());
    }

    #[test]
    fn auto_precharge_read_closes_row() {
        let mut b = Bank::new();
        let tp = t();
        b.activate(7, 0, &tp);
        b.read(7, 15, true, &tp);
        assert_eq!(b.state(), BankState::Idle);
        // Reopening must wait for the implicit precharge to finish.
        assert!(b.next_activate_allowed() >= 15 + tp.t_rtp + tp.t_rp);
    }

    #[test]
    fn auto_precharge_write_closes_row() {
        let mut b = Bank::new();
        let tp = t();
        b.activate(7, 0, &tp);
        b.write(7, 15, true, &tp);
        assert_eq!(b.state(), BankState::Idle);
        assert!(b.next_activate_allowed() >= 15 + tp.write_to_precharge() + tp.t_rp);
    }

    #[test]
    fn precharge_reports_access_count() {
        let mut b = Bank::new();
        let tp = t();
        b.activate(3, 0, &tp);
        b.read(3, 20, false, &tp);
        b.read(3, 30, false, &tp);
        b.write(3, 40, false, &tp);
        let accesses = b.precharge(100, &tp);
        assert_eq!(accesses, 3);
        assert_eq!(b.activations(), 1);
    }

    #[test]
    #[should_panic(expected = "illegal ACTIVATE")]
    fn double_activate_panics() {
        let mut b = Bank::new();
        b.activate(1, 0, &t());
        b.activate(2, 1, &t());
    }

    #[test]
    fn block_until_delays_everything() {
        let mut b = Bank::new();
        b.block_until(500);
        assert!(!b.can_activate(499));
        assert!(b.can_activate(500));
    }
}
