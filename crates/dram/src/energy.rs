//! DRAM energy accounting over the power-state subsystem.
//!
//! The paper defers energy/power analysis to future work while conjecturing
//! that the simplest scheduling/page policies would also be the cheapest.
//! This module supplies the model that lets the rest of the stack test that
//! conjecture: a Micron-power-calculator-style decomposition into
//!
//! * **event energy** — one charge per ACTIVATE+PRECHARGE pair, READ burst,
//!   WRITE burst and REFRESH, taken from the command counters in
//!   [`crate::channel::ChannelStats`]; and
//! * **background energy** — each rank's per-cycle draw priced by the CKE
//!   power state it is in (active/precharge standby, fast/slow power-down,
//!   self-refresh), taken from the state-residency counters the per-rank
//!   power-state machine in [`crate::rank::Rank`] accrues in closed form.
//!
//! Residency accrues at state transitions, never per simulated cycle, so the
//! background integral is exact under the kernel's event-horizon fast-forward
//! and bit-identical to a cycle-by-cycle run.

use crate::channel::ChannelStats;
use crate::timing::TimingParams;

/// Per-event and per-state background energy parameters, in picojoules and
/// milliwatts respectively. All background powers are per rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of one ACTIVATE+PRECHARGE pair (pJ).
    pub activate_precharge_pj: f64,
    /// Energy of one READ burst (pJ).
    pub read_pj: f64,
    /// Energy of one WRITE burst (pJ).
    pub write_pj: f64,
    /// Energy of one REFRESH command (pJ).
    pub refresh_pj: f64,
    /// Background power while any row is open (mW).
    pub active_standby_mw: f64,
    /// Background power while all rows are closed, CKE high (mW).
    pub precharge_standby_mw: f64,
    /// Background power in fast-exit precharge power-down (mW).
    pub power_down_fast_mw: f64,
    /// Background power in slow-exit (DLL-off) precharge power-down (mW).
    pub power_down_slow_mw: f64,
    /// Background power in self-refresh (mW). The on-die refresh engine is
    /// included: no event energy is charged for self-refresh intervals.
    pub self_refresh_mw: f64,
}

impl EnergyParams {
    /// DDR3-1600 parameters: a 4 Gb x8 device scaled to a 64-bit rank,
    /// matching the paper's baseline devices (Table 2).
    #[must_use]
    pub fn ddr3_1600() -> Self {
        Self {
            activate_precharge_pj: 2800.0,
            read_pj: 2100.0,
            write_pj: 2300.0,
            refresh_pj: 26000.0,
            active_standby_mw: 430.0,
            precharge_standby_mw: 320.0,
            power_down_fast_mw: 180.0,
            power_down_slow_mw: 120.0,
            self_refresh_mw: 72.0,
        }
    }

    /// DDR4-2400 parameters: an 8 Gb x8 device scaled to a 64-bit rank.
    /// Lower core voltage cuts the standby floor; refresh per command is
    /// costlier because the devices are denser.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        Self {
            activate_precharge_pj: 1900.0,
            read_pj: 1700.0,
            write_pj: 1900.0,
            refresh_pj: 42000.0,
            active_standby_mw: 330.0,
            precharge_standby_mw: 240.0,
            power_down_fast_mw: 130.0,
            power_down_slow_mw: 85.0,
            self_refresh_mw: 50.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

/// Energy consumed by one channel over a measured interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Row activation + precharge energy (pJ).
    pub activation_pj: f64,
    /// Column read energy (pJ).
    pub read_pj: f64,
    /// Column write energy (pJ).
    pub write_pj: f64,
    /// Refresh energy (pJ).
    pub refresh_pj: f64,
    /// Background energy over all power states (pJ).
    pub background_pj: f64,
    /// Portion of `background_pj` spent in the CKE-low states (pJ); the
    /// savings a power-down policy earns show up as standby energy moving
    /// into this cheaper bucket.
    pub powered_down_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.activation_pj + self.read_pj + self.write_pj + self.refresh_pj + self.background_pj
    }

    /// Average power in milliwatts over `elapsed_cycles` DRAM cycles.
    #[must_use]
    pub fn average_power_mw(&self, elapsed_cycles: u64, timing: &TimingParams) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let seconds = elapsed_cycles as f64 * timing.t_ck_ps as f64 * 1e-12;
        self.total_pj() * 1e-12 / seconds * 1e3
    }
}

/// The channel energy model: events from command counters, background from
/// power-state residency.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with the given parameters.
    #[must_use]
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// Parameters in use.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    fn event_energy(&self, stats: &ChannelStats) -> EnergyBreakdown {
        let p = &self.params;
        EnergyBreakdown {
            activation_pj: stats.activates as f64 * p.activate_precharge_pj,
            read_pj: stats.reads as f64 * p.read_pj,
            write_pj: stats.writes as f64 * p.write_pj,
            refresh_pj: stats.refreshes as f64 * p.refresh_pj,
            background_pj: 0.0,
            powered_down_pj: 0.0,
        }
    }

    /// Computes the energy breakdown for `stats` whose power-state residency
    /// counters are populated (a [`crate::channel::DramChannel::stats_at`]
    /// snapshot, or the difference of two such snapshots for a measurement
    /// window). Each rank-cycle is priced by the state it was spent in.
    #[must_use]
    pub fn breakdown_from_residency(
        &self,
        stats: &ChannelStats,
        timing: &TimingParams,
    ) -> EnergyBreakdown {
        let p = &self.params;
        let cycle_s = timing.t_ck_ps as f64 * 1e-12;
        // mW * s = mJ; convert to pJ (1 mJ = 1e9 pJ).
        let mws_to_pj = |mw: f64, cycles: u64| mw * cycles as f64 * cycle_s * 1e9;
        let powered_down_pj = mws_to_pj(p.power_down_fast_mw, stats.power_down_fast_cycles)
            + mws_to_pj(p.power_down_slow_mw, stats.power_down_slow_cycles)
            + mws_to_pj(p.self_refresh_mw, stats.self_refresh_cycles);
        let background_pj = mws_to_pj(p.active_standby_mw, stats.active_standby_cycles)
            + mws_to_pj(p.precharge_standby_mw, stats.precharge_standby_cycles)
            + powered_down_pj;
        EnergyBreakdown {
            background_pj,
            powered_down_pj,
            ..self.event_energy(stats)
        }
    }

    /// Coarse legacy breakdown for stats without residency counters:
    /// `active_cycles` of the interval are charged at active-standby power
    /// and the remainder at precharge-standby power (no power-down states).
    ///
    /// Prefer [`EnergyModel::breakdown_from_residency`]; this survives for
    /// callers that only kept command counters.
    #[must_use]
    pub fn breakdown(
        &self,
        stats: &ChannelStats,
        elapsed_cycles: u64,
        active_cycles: u64,
        timing: &TimingParams,
    ) -> EnergyBreakdown {
        let p = &self.params;
        let active = active_cycles.min(elapsed_cycles);
        let idle = elapsed_cycles - active;
        let cycle_s = timing.t_ck_ps as f64 * 1e-12;
        let background_pj = (p.active_standby_mw * active as f64 * cycle_s
            + p.precharge_standby_mw * idle as f64 * cycle_s)
            * 1e9;
        EnergyBreakdown {
            background_pj,
            ..self.event_energy(stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ChannelStats {
        ChannelStats {
            activates: 10,
            precharges: 10,
            reads: 50,
            writes: 20,
            refreshes: 2,
            data_bus_busy_cycles: 280,
            ..ChannelStats::default()
        }
    }

    fn stats_with_residency() -> ChannelStats {
        ChannelStats {
            active_standby_cycles: 4_000,
            precharge_standby_cycles: 6_000,
            power_down_fast_cycles: 5_000,
            power_down_slow_cycles: 3_000,
            self_refresh_cycles: 2_000,
            power_down_entries: 3,
            self_refresh_entries: 1,
            power_wakes: 4,
            ..stats()
        }
    }

    #[test]
    fn presets_order_background_powers_by_depth() {
        for p in [EnergyParams::ddr3_1600(), EnergyParams::ddr4_2400()] {
            assert!(p.active_standby_mw > p.precharge_standby_mw);
            assert!(p.precharge_standby_mw > p.power_down_fast_mw);
            assert!(p.power_down_fast_mw > p.power_down_slow_mw);
            assert!(p.power_down_slow_mw > p.self_refresh_mw);
        }
        assert_eq!(EnergyParams::default(), EnergyParams::ddr3_1600());
        // DDR4 standby floor is below DDR3's.
        assert!(
            EnergyParams::ddr4_2400().precharge_standby_mw
                < EnergyParams::ddr3_1600().precharge_standby_mw
        );
    }

    #[test]
    fn breakdown_scales_with_events() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let b = m.breakdown(&stats(), 10_000, 4_000, &t);
        assert!((b.activation_pj - 10.0 * 2800.0).abs() < 1e-6);
        assert!((b.read_pj - 50.0 * 2100.0).abs() < 1e-6);
        assert!((b.write_pj - 20.0 * 2300.0).abs() < 1e-6);
        assert!((b.refresh_pj - 2.0 * 26000.0).abs() < 1e-6);
        assert!(b.background_pj > 0.0);
        assert!(b.total_pj() > b.activation_pj);
    }

    #[test]
    fn residency_breakdown_prices_each_state() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let s = stats_with_residency();
        let b = m.breakdown_from_residency(&s, &t);
        let cycle_s = t.t_ck_ps as f64 * 1e-12;
        let expect = (430.0 * 4_000.0
            + 320.0 * 6_000.0
            + 180.0 * 5_000.0
            + 120.0 * 3_000.0
            + 72.0 * 2_000.0)
            * cycle_s
            * 1e9;
        assert!(
            (b.background_pj - expect).abs() < 1e-3,
            "{}",
            b.background_pj
        );
        let down = (180.0 * 5_000.0 + 120.0 * 3_000.0 + 72.0 * 2_000.0) * cycle_s * 1e9;
        assert!((b.powered_down_pj - down).abs() < 1e-3);
        // Event energies match the command counters.
        assert!((b.activation_pj - 10.0 * 2800.0).abs() < 1e-6);
    }

    #[test]
    fn power_down_residency_costs_less_than_standby() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let awake = ChannelStats {
            precharge_standby_cycles: 20_000,
            ..stats()
        };
        let asleep = ChannelStats {
            precharge_standby_cycles: 2_000,
            power_down_slow_cycles: 18_000,
            ..stats()
        };
        let b_awake = m.breakdown_from_residency(&awake, &t);
        let b_asleep = m.breakdown_from_residency(&asleep, &t);
        assert!(b_asleep.background_pj < b_awake.background_pj);
        assert_eq!(b_awake.powered_down_pj, 0.0);
    }

    #[test]
    fn more_activations_cost_more_energy() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let mut busy = stats();
        busy.activates = 100;
        let low = m.breakdown(&stats(), 10_000, 4_000, &t).total_pj();
        let high = m.breakdown(&busy, 10_000, 4_000, &t).total_pj();
        assert!(high > low);
    }

    #[test]
    fn average_power_is_zero_for_empty_interval() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.average_power_mw(0, &TimingParams::ddr3_1600()), 0.0);
    }

    #[test]
    fn active_cycles_clamped_to_elapsed() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let b = m.breakdown(&stats(), 100, 500, &t);
        // All cycles charged at active standby, none negative.
        assert!(b.background_pj > 0.0);
    }
}
