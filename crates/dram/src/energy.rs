//! Simple DRAM energy accounting.
//!
//! The paper explicitly defers energy/power analysis to future work but
//! argues that the simplest policies would also be the cheapest. This module
//! provides the groundwork: an event-based energy model in the style of the
//! Micron power calculator, driven by the command counters collected in
//! [`crate::channel::ChannelStats`].

use crate::channel::ChannelStats;
use crate::timing::TimingParams;

/// Per-event and background energy parameters, in picojoules / milliwatts.
///
/// Defaults approximate a 4 Gb DDR3-1600 x8 device scaled to a 64-bit rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of one ACTIVATE+PRECHARGE pair (pJ).
    pub activate_precharge_pj: f64,
    /// Energy of one READ burst (pJ).
    pub read_pj: f64,
    /// Energy of one WRITE burst (pJ).
    pub write_pj: f64,
    /// Energy of one REFRESH command (pJ).
    pub refresh_pj: f64,
    /// Background power while any row is open (mW).
    pub active_standby_mw: f64,
    /// Background power while all rows are closed (mW).
    pub precharge_standby_mw: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            activate_precharge_pj: 2800.0,
            read_pj: 2100.0,
            write_pj: 2300.0,
            refresh_pj: 26000.0,
            active_standby_mw: 430.0,
            precharge_standby_mw: 320.0,
        }
    }
}

/// Energy consumed by one channel over a measured interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Row activation + precharge energy (pJ).
    pub activation_pj: f64,
    /// Column read energy (pJ).
    pub read_pj: f64,
    /// Column write energy (pJ).
    pub write_pj: f64,
    /// Refresh energy (pJ).
    pub refresh_pj: f64,
    /// Background (standby) energy (pJ).
    pub background_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.activation_pj + self.read_pj + self.write_pj + self.refresh_pj + self.background_pj
    }

    /// Average power in milliwatts over `elapsed_cycles` DRAM cycles.
    #[must_use]
    pub fn average_power_mw(&self, elapsed_cycles: u64, timing: &TimingParams) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let seconds = elapsed_cycles as f64 * timing.t_ck_ps as f64 * 1e-12;
        self.total_pj() * 1e-12 / seconds * 1e3
    }
}

/// Event-based energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with the given parameters.
    #[must_use]
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// Parameters in use.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the energy breakdown for `stats` collected over
    /// `elapsed_cycles` DRAM cycles, of which `active_cycles` had at least one
    /// open row (the remainder is charged at precharge-standby power).
    #[must_use]
    pub fn breakdown(
        &self,
        stats: &ChannelStats,
        elapsed_cycles: u64,
        active_cycles: u64,
        timing: &TimingParams,
    ) -> EnergyBreakdown {
        let p = &self.params;
        let active = active_cycles.min(elapsed_cycles);
        let idle = elapsed_cycles - active;
        let cycle_s = timing.t_ck_ps as f64 * 1e-12;
        // mW * s = mJ; convert to pJ (1 mJ = 1e9 pJ).
        let background_pj = (p.active_standby_mw * active as f64 * cycle_s
            + p.precharge_standby_mw * idle as f64 * cycle_s)
            * 1e9;
        EnergyBreakdown {
            activation_pj: stats.activates as f64 * p.activate_precharge_pj,
            read_pj: stats.reads as f64 * p.read_pj,
            write_pj: stats.writes as f64 * p.write_pj,
            refresh_pj: stats.refreshes as f64 * p.refresh_pj,
            background_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ChannelStats {
        ChannelStats {
            activates: 10,
            precharges: 10,
            reads: 50,
            writes: 20,
            refreshes: 2,
            data_bus_busy_cycles: 280,
        }
    }

    #[test]
    fn breakdown_scales_with_events() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let b = m.breakdown(&stats(), 10_000, 4_000, &t);
        assert!((b.activation_pj - 10.0 * 2800.0).abs() < 1e-6);
        assert!((b.read_pj - 50.0 * 2100.0).abs() < 1e-6);
        assert!((b.write_pj - 20.0 * 2300.0).abs() < 1e-6);
        assert!((b.refresh_pj - 2.0 * 26000.0).abs() < 1e-6);
        assert!(b.background_pj > 0.0);
        assert!(b.total_pj() > b.activation_pj);
    }

    #[test]
    fn more_activations_cost_more_energy() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let mut busy = stats();
        busy.activates = 100;
        let low = m.breakdown(&stats(), 10_000, 4_000, &t).total_pj();
        let high = m.breakdown(&busy, 10_000, 4_000, &t).total_pj();
        assert!(high > low);
    }

    #[test]
    fn average_power_is_zero_for_empty_interval() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.average_power_mw(0, &TimingParams::ddr3_1600()), 0.0);
    }

    #[test]
    fn active_cycles_clamped_to_elapsed() {
        let m = EnergyModel::default();
        let t = TimingParams::ddr3_1600();
        let b = m.breakdown(&stats(), 100, 500, &t);
        // All cycles charged at active standby, none negative.
        assert!(b.background_pj > 0.0);
    }
}
