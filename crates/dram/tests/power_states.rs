//! Channel-level properties of the rank power-state machine: command
//! legality while powered down, JEDEC entry/exit fences, residency
//! conservation, and the interaction with refresh.

use cloudmc_dram::{
    Command, DramChannel, DramConfig, EnergyModel, Location, PowerDownMode, PowerState,
};

fn channel() -> (DramChannel, DramConfig) {
    let cfg = DramConfig::baseline();
    (DramChannel::new(&cfg), cfg)
}

#[test]
fn powered_down_rank_rejects_every_command() {
    let (mut ch, cfg) = channel();
    let t = cfg.timing;
    let loc = Location::new(0, 0, 5, 0);
    assert!(ch.can_enter_power_down(0, PowerDownMode::Fast, 0));
    ch.enter_power_down(0, PowerDownMode::Fast, 0);
    assert_eq!(ch.power_state(0), PowerState::PowerDownFast);
    for cmd in [Command::activate(loc), Command::refresh(0)] {
        assert!(!ch.can_issue(&cmd, 100));
        assert_eq!(ch.earliest_legal(&cmd), None);
    }
    // The other rank is unaffected.
    let other = Location::new(1, 0, 5, 0);
    assert!(ch.can_issue(&Command::activate(other), 100));
    // After the wake, commands become legal at the announced ready cycle.
    let ready = ch.wake_rank(0, 100);
    assert_eq!(ready, 100 + t.t_xp);
    assert!(!ch.can_issue(&Command::activate(loc), ready - 1));
    assert!(ch.can_issue(&Command::activate(loc), ready));
}

#[test]
fn entry_waits_for_open_rows_and_in_flight_bursts() {
    let (mut ch, cfg) = channel();
    let t = cfg.timing;
    let loc = Location::new(0, 0, 5, 0);
    ch.issue(&Command::activate(loc), 0);
    // Open row: entry illegal regardless of time.
    assert!(!ch.can_enter_power_down(0, PowerDownMode::Fast, 10_000.min(t.t_refi - 1)));
    let rd_at = t.t_rcd;
    ch.issue(&Command::read(loc, false), rd_at);
    let pre_at = t.t_ras;
    ch.issue(&Command::precharge(loc), pre_at);
    // The precharge must complete before CKE can drop.
    assert!(!ch.can_enter_power_down(0, PowerDownMode::Fast, pre_at));
    let quiet = ch.earliest_power_down(0);
    assert!(quiet >= pre_at + t.t_rp);
    assert!(ch.can_enter_power_down(0, PowerDownMode::Fast, quiet));
}

#[test]
fn self_refresh_rank_is_never_refresh_due() {
    let (mut ch, cfg) = channel();
    let t = cfg.timing;
    ch.enter_power_down(0, PowerDownMode::SelfRefresh, 0);
    // Rank 0 self-maintains; rank 1 still comes due on schedule.
    assert_eq!(ch.refresh_due(t.t_refi), Some(1));
    assert_eq!(ch.refresh_backlog(0, t.t_refi * 3), 0);
    assert!(ch.refresh_backlog(1, t.t_refi * 3) > 0);
    // Exiting self-refresh restarts the schedule one interval out and fences
    // REF behind the exit latency.
    let wake_at = t.t_refi * 2;
    let ready = ch.wake_rank(0, wake_at);
    assert_eq!(ready, wake_at + t.t_xs);
    assert_eq!(
        ch.earliest_legal(&Command::refresh(0)),
        Some(ready),
        "REF must wait out tXS"
    );
    assert_eq!(ch.refresh_due(wake_at + t.t_refi - 1), Some(1));
}

#[test]
fn fast_power_down_refused_while_refresh_overdue() {
    let (mut ch, cfg) = channel();
    let t = cfg.timing;
    // Past the due cycle, fast/slow entry would be woken right back up.
    assert!(!ch.can_enter_power_down(0, PowerDownMode::Fast, t.t_refi));
    // Self-refresh is allowed: the on-die engine takes over the obligation.
    assert!(ch.can_enter_power_down(0, PowerDownMode::SelfRefresh, t.t_refi));
    // Serving the refresh re-enables fast entry.
    let out = ch.issue(&Command::refresh(0), t.t_refi);
    assert!(ch.can_enter_power_down(0, PowerDownMode::Fast, out.completion_cycle));
}

#[test]
fn residency_conserves_rank_cycles_under_activity() {
    let (mut ch, cfg) = channel();
    let t = cfg.timing;
    let loc = Location::new(0, 0, 5, 0);
    ch.issue(&Command::activate(loc), 0);
    ch.issue(&Command::read(loc, false), t.t_rcd);
    ch.issue(&Command::precharge(loc), t.t_ras);
    ch.enter_power_down(1, PowerDownMode::Fast, 100);
    for now in [100u64, 500] {
        let stats = ch.stats_at(now);
        assert_eq!(
            stats.state_residency_cycles(),
            now * ch.rank_count() as u64,
            "residency must sum to elapsed rank-cycles at {now}"
        );
    }
    let wake_at = 1_000;
    ch.wake_rank(1, wake_at);
    for now in [1_000u64, 4_000] {
        let stats = ch.stats_at(now);
        assert_eq!(
            stats.state_residency_cycles(),
            now * ch.rank_count() as u64,
            "residency must sum to elapsed rank-cycles at {now}"
        );
    }
    let stats = ch.stats_at(4_000);
    assert_eq!(stats.power_down_fast_cycles, wake_at - 100);
    assert_eq!(stats.active_standby_cycles, t.t_ras);
    assert_eq!(stats.power_down_entries, 1);
    assert_eq!(stats.power_wakes, 1);
    // The live counter view never reports residency.
    assert_eq!(ch.stats().state_residency_cycles(), 0);
}

#[test]
fn energy_accrual_is_monotone_and_rewards_power_down() {
    let (mut ch, _) = channel();
    let model = EnergyModel::default();
    let t = *ch.timing();
    let mut last = 0.0;
    ch.enter_power_down(0, PowerDownMode::Slow, 0);
    for now in [0u64, 100, 1_000, 10_000.min(t.t_refi - 1)] {
        let e = model
            .breakdown_from_residency(&ch.stats_at(now), &t)
            .total_pj();
        assert!(e >= last, "energy must accrue monotonically");
        last = e;
    }
    // An identical channel that stayed in standby burns more background.
    let (awake, _) = channel();
    let horizon = t.t_refi - 1;
    let e_awake = model
        .breakdown_from_residency(&awake.stats_at(horizon), &t)
        .total_pj();
    let e_asleep = model
        .breakdown_from_residency(&ch.stats_at(horizon), &t)
        .total_pj();
    assert!(
        e_asleep < e_awake,
        "slow power-down must cut background energy ({e_asleep} vs {e_awake})"
    );
}

#[test]
fn deepening_transitions_accumulate_distinct_residency() {
    let (mut ch, cfg) = channel();
    let t = cfg.timing;
    ch.enter_power_down(0, PowerDownMode::Fast, 0);
    assert!(ch.can_enter_power_down(0, PowerDownMode::Slow, t.t_cke));
    ch.enter_power_down(0, PowerDownMode::Slow, 100);
    ch.enter_power_down(0, PowerDownMode::SelfRefresh, 300);
    let stats = ch.stats_at(1_000);
    assert_eq!(stats.power_down_fast_cycles, 100);
    assert_eq!(stats.power_down_slow_cycles, 200);
    assert_eq!(stats.self_refresh_cycles, 700);
    assert_eq!(
        stats.power_down_entries, 1,
        "deepening is not a fresh entry"
    );
    assert_eq!(stats.self_refresh_entries, 1);
}
