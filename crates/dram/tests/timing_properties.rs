//! Randomized tests of the DRAM timing model: for arbitrary legal command
//! sequences the device never violates its own protocol invariants.
//!
//! These were originally `proptest` properties; the build environment has no
//! registry access, so they now draw their cases from a seeded [`rand`]
//! stream — same invariants, deterministic inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_dram::{Command, CommandKind, DramChannel, DramConfig, Location};

/// A simple request the driver will serve with an open-page policy.
#[derive(Debug, Clone, Copy)]
struct Req {
    rank: usize,
    bank: usize,
    row: u64,
    column: u64,
    write: bool,
}

fn random_requests(rng: &mut StdRng, max_len: usize) -> Vec<Req> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| Req {
            rank: rng.gen_range(0..2usize),
            bank: rng.gen_range(0..8usize),
            row: rng.gen_range(0..32u64),
            column: rng.gen_range(0..128u64),
            write: rng.gen_bool(0.5),
        })
        .collect()
}

/// Drives the requests through a channel with a naive open-page FSM (precharge
/// on conflict, activate, column access), returning the issue history.
fn drive(requests: &[Req]) -> (DramConfig, Vec<(u64, Command)>) {
    let cfg = DramConfig::baseline();
    let mut channel = DramChannel::new(&cfg);
    let mut history = Vec::new();
    let mut now = 0u64;
    for req in requests {
        let loc = Location::new(req.rank, req.bank, req.row, req.column);
        loop {
            assert!(now < 2_000_000, "request never became serviceable");
            // Refresh beats everything when the device demands it.
            if let Some(rank) = channel.refresh_due(now) {
                let refresh = Command::refresh(rank);
                if channel.can_issue(&refresh, now) {
                    channel.issue(&refresh, now);
                    history.push((now, refresh));
                    now += 1;
                    continue;
                }
            }
            let next = match channel.open_row(req.rank, req.bank) {
                Some(open) if open == req.row => {
                    if req.write {
                        Command::write(loc, false)
                    } else {
                        Command::read(loc, false)
                    }
                }
                Some(_) => Command::precharge(loc),
                None => Command::activate(loc),
            };
            if channel.can_issue(&next, now) {
                channel.issue(&next, now);
                history.push((now, next));
                now += 1;
                if next.kind.is_column() {
                    break;
                }
            } else {
                now += 1;
            }
        }
    }
    (cfg, history)
}

/// Any request sequence can be served without panicking, and every request
/// results in exactly one column command.
#[test]
fn every_request_is_served_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0xD1A);
    for _case in 0..48 {
        let requests = random_requests(&mut rng, 40);
        let (_, history) = drive(&requests);
        let columns = history.iter().filter(|(_, c)| c.kind.is_column()).count();
        assert_eq!(columns, requests.len());
    }
}

/// The four-activate window is never violated: any five consecutive activates
/// to one rank span more than tFAW cycles.
#[test]
fn tfaw_is_respected() {
    let mut rng = StdRng::seed_from_u64(0xFA11);
    for _case in 0..48 {
        let requests = random_requests(&mut rng, 60);
        let (cfg, history) = drive(&requests);
        for rank in 0..cfg.ranks_per_channel {
            let acts: Vec<u64> = history
                .iter()
                .filter(|(_, c)| c.kind == CommandKind::Activate && c.loc.rank == rank)
                .map(|(t, _)| *t)
                .collect();
            for window in acts.windows(5) {
                assert!(
                    window[4] - window[0] >= cfg.timing.t_faw,
                    "five activates within tFAW: {window:?}"
                );
            }
        }
    }
}

/// Same-bank activates are separated by at least tRC, and activates to
/// different banks of one rank by at least tRRD.
#[test]
fn activate_spacing_is_respected() {
    let mut rng = StdRng::seed_from_u64(0x5BAC);
    for _case in 0..48 {
        let requests = random_requests(&mut rng, 60);
        let (cfg, history) = drive(&requests);
        let acts: Vec<(u64, usize, usize)> = history
            .iter()
            .filter(|(_, c)| c.kind == CommandKind::Activate)
            .map(|(t, c)| (*t, c.loc.rank, c.loc.bank))
            .collect();
        for (i, &(t1, rank1, bank1)) in acts.iter().enumerate() {
            for &(t0, rank0, bank0) in &acts[..i] {
                if rank0 == rank1 {
                    assert!(t1 - t0 >= cfg.timing.t_rrd, "tRRD violated: {t0} -> {t1}");
                    if bank0 == bank1 {
                        assert!(t1 - t0 >= cfg.timing.t_rc, "tRC violated: {t0} -> {t1}");
                    }
                }
            }
        }
    }
}

/// Data bursts never overlap on the shared data bus.
#[test]
fn data_bus_bursts_never_overlap() {
    let mut rng = StdRng::seed_from_u64(0xB0B5);
    for _case in 0..48 {
        let requests = random_requests(&mut rng, 60);
        let (cfg, history) = drive(&requests);
        let t = cfg.timing;
        let mut bursts: Vec<(u64, u64)> = history
            .iter()
            .filter_map(|(time, c)| match c.kind {
                CommandKind::Read { .. } => Some((time + t.cl, time + t.cl + t.t_burst)),
                CommandKind::Write { .. } => Some((time + t.cwl, time + t.cwl + t.t_burst)),
                _ => None,
            })
            .collect();
        bursts.sort_unstable();
        for pair in bursts.windows(2) {
            assert!(
                pair[1].0 >= pair[0].1,
                "data bursts overlap: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}

/// At most one command is issued per DRAM cycle (command-bus constraint).
#[test]
fn one_command_per_cycle() {
    let mut rng = StdRng::seed_from_u64(0xC10C);
    for _case in 0..48 {
        let requests = random_requests(&mut rng, 60);
        let (_, history) = drive(&requests);
        for pair in history.windows(2) {
            assert!(pair[1].0 > pair[0].0, "two commands in cycle {}", pair[0].0);
        }
    }
}
