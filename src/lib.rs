//! cloudmc umbrella crate: re-exports the full public API.
#![forbid(unsafe_code)]

pub use cloudmc_cpu as cpu;
pub use cloudmc_dram as dram;
pub use cloudmc_memctrl as memctrl;
pub use cloudmc_sim as sim;
pub use cloudmc_snap as snap;
pub use cloudmc_telemetry as telemetry;
pub use cloudmc_workloads as workloads;
